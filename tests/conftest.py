"""Shared fixtures for the test suite.

The default profile is *fast*: tests marked ``@pytest.mark.slow``
(multi-second simulation sweeps) are skipped unless ``--slow`` is given, so
``pytest -x -q`` stays a sub-minute gate while the heavy parallel-sweep
checks remain one flag away.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--slow",
        action="store_true",
        default=False,
        help="also run tests marked 'slow' (multi-second simulation sweeps)",
    )


def pytest_collection_modifyitems(config: pytest.Config, items) -> None:
    if config.getoption("--slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --slow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)

from repro.cluster.presets import paper_evaluation_system
from repro.cluster.system import MultiClusterSystem
from repro.des.core import Environment
from repro.des.rng import RandomStreams
from repro.network.switch import SwitchFabric
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic random streams for tests."""
    return RandomStreams(seed=12345)


@pytest.fixture
def small_case1_system() -> MultiClusterSystem:
    """A small Case-1 system (4 clusters x 8 processors) for fast tests."""
    return paper_evaluation_system(
        num_clusters=4,
        icn_technology=GIGABIT_ETHERNET,
        ecn_technology=FAST_ETHERNET,
        total_processors=32,
    )


@pytest.fixture
def paper_case1_system() -> MultiClusterSystem:
    """The paper's 256-node Case-1 platform with 16 clusters."""
    return paper_evaluation_system(
        num_clusters=16,
        icn_technology=GIGABIT_ETHERNET,
        ecn_technology=FAST_ETHERNET,
        total_processors=256,
    )


@pytest.fixture
def small_switch() -> SwitchFabric:
    """An 8-port switch matching the paper's Figure-3 example."""
    return SwitchFabric(ports=8, latency_s=10e-6)
