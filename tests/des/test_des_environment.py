"""Unit tests for the DES environment / scheduler."""

from __future__ import annotations

import pytest

from repro.des.core import EmptySchedule, Environment
from repro.errors import SimulationError


class TestClock:
    def test_initial_time_default(self):
        assert Environment().now == 0.0

    def test_initial_time_custom(self):
        assert Environment(initial_time=100.0).now == 100.0

    def test_time_advances_monotonically(self, env):
        seen = []

        def proc(env):
            for delay in (1.0, 0.5, 2.0):
                yield env.timeout(delay)
                seen.append(env.now)

        env.process(proc(env))
        env.run()
        assert seen == [1.0, 1.5, 3.5]
        assert seen == sorted(seen)

    def test_peek_returns_next_event_time(self, env):
        env.timeout(4.0)
        env.timeout(2.0)
        assert env.peek() == 2.0

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")


class TestRun:
    def test_run_until_time(self, env):
        fired = []

        def proc(env):
            while True:
                yield env.timeout(1.0)
                fired.append(env.now)

        env.process(proc(env))
        env.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_run_until_past_time_rejected(self, env):
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(2.0)
            return "finished"

        process = env.process(proc(env))
        assert env.run(until=process) == "finished"

    def test_run_until_already_processed_event_returns_value(self, env):
        done = env.event()
        done.succeed("val")
        env.run()
        assert done.processed
        assert env.run(until=done) == "val"

    def test_run_until_already_processed_failed_event_reraises(self, env):
        """Regression: a stored failure must re-raise, not vanish as None."""
        failed = env.event()

        def catcher(env, event):
            try:
                yield event
            except RuntimeError:
                pass  # defuse so the simulation itself survives

        env.process(catcher(env, failed))
        failed.fail(RuntimeError("stored failure"))
        env.run()
        assert failed.processed and not failed.ok
        with pytest.raises(RuntimeError, match="stored failure"):
            env.run(until=failed)

    def test_run_drains_queue_without_until(self, env):
        def proc(env):
            yield env.timeout(1.0)
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert env.queue_size == 0
        assert env.now == 2.0

    def test_run_until_never_triggered_event_raises(self, env):
        never = env.event()

        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run(until=never)

    def test_step_on_empty_schedule_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_run_until_empty_counts_events(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        assert env.run_until_empty() == 2

    def test_run_until_empty_budget_exceeded(self, env):
        def forever(env):
            while True:
                yield env.timeout(1.0)

        env.process(forever(env))
        with pytest.raises(SimulationError):
            env.run_until_empty(max_events=10)

    def test_unhandled_process_failure_propagates(self, env):
        def broken(env):
            yield env.timeout(1.0)
            raise ValueError("broken process")

        env.process(broken(env))
        with pytest.raises(ValueError, match="broken process"):
            env.run()


class TestOrdering:
    def test_same_time_fifo_order(self, env):
        order = []

        def proc(env, name):
            yield env.timeout(1.0)
            order.append(name)

        for name in ("a", "b", "c"):
            env.process(proc(env, name))
        env.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected_in_schedule(self, env):
        event = env.event()
        with pytest.raises(ValueError):
            env.schedule(event, delay=-0.1)

    def test_queue_size_tracks_scheduled_events(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        assert env.queue_size == 2
        env.step()
        assert env.queue_size == 1

    def test_repr_contains_time(self, env):
        env.timeout(1.0)
        assert "t=0.0" in repr(env)
