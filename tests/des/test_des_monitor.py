"""Unit tests for monitors and tracing."""

from __future__ import annotations

import math
import warnings

import pytest

from repro.des.monitor import Monitor, TimeWeightedMonitor, Tracer


class TestMonitor:
    def test_empty_monitor_stats_are_nan(self):
        mon = Monitor()
        assert math.isnan(mon.mean())
        assert math.isnan(mon.minimum())
        assert math.isnan(mon.maximum())
        assert mon.count == 0

    def test_record_and_statistics(self):
        mon = Monitor("latency")
        for t, v in enumerate([2.0, 4.0, 6.0, 8.0]):
            mon.record(float(t), v)
        assert mon.mean() == pytest.approx(5.0)
        assert mon.minimum() == 2.0
        assert mon.maximum() == 8.0
        assert mon.std() == pytest.approx(2.581988897, rel=1e-6)
        assert mon.percentile(50) == pytest.approx(5.0)

    def test_extend_requires_matching_lengths(self):
        mon = Monitor()
        with pytest.raises(ValueError):
            mon.extend([1.0, 2.0], [1.0])

    def test_extend_and_len(self):
        mon = Monitor()
        mon.extend([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert len(mon) == 3
        assert list(mon.values) == [1.0, 2.0, 3.0]

    def test_truncated_removes_warmup(self):
        mon = Monitor()
        mon.extend(range(10), [100.0] * 5 + [1.0] * 5)
        steady = mon.truncated(5)
        assert steady.count == 5
        assert steady.mean() == pytest.approx(1.0)

    def test_truncated_negative_rejected(self):
        with pytest.raises(ValueError):
            Monitor().truncated(-1)

    def test_reset(self):
        mon = Monitor()
        mon.record(0.0, 1.0)
        mon.reset()
        assert mon.count == 0

    def test_summary_keys(self):
        mon = Monitor()
        mon.extend(range(100), [float(i) for i in range(100)])
        summary = mon.summary()
        assert set(summary) == {"count", "mean", "std", "min", "max", "p50", "p95", "p99"}
        assert summary["count"] == 100


class TestTimeWeightedMonitor:
    def test_time_average_piecewise_constant(self):
        mon = TimeWeightedMonitor(initial=0.0)
        mon.update(2.0, 4.0)   # level 0 on [0, 2), then 4
        mon.update(6.0, 1.0)   # level 4 on [2, 6), then 1
        # Average over [0, 10): (0*2 + 4*4 + 1*4) / 10 = 2.0
        assert mon.time_average(now=10.0) == pytest.approx(2.0)

    def test_increment_decrement(self):
        mon = TimeWeightedMonitor()
        mon.increment(1.0)
        mon.increment(2.0)
        mon.decrement(3.0)
        assert mon.current == 1.0
        assert mon.maximum == 2.0
        assert mon.minimum == 0.0

    def test_time_going_backwards_rejected(self):
        mon = TimeWeightedMonitor()
        mon.update(5.0, 1.0)
        with pytest.raises(ValueError):
            mon.update(4.0, 2.0)

    def test_time_average_before_last_update_rejected(self):
        mon = TimeWeightedMonitor()
        mon.update(5.0, 1.0)
        with pytest.raises(ValueError):
            mon.time_average(now=1.0)

    def test_zero_horizon_returns_current(self):
        mon = TimeWeightedMonitor(initial=3.0, start_time=2.0)
        assert mon.time_average(now=2.0) == 3.0


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        tracer.log(0.0, "msg", "hello")
        assert len(tracer) == 0

    def test_enabled_records(self):
        tracer = Tracer(enabled=True)
        tracer.log(1.0, "msg", "hello", source=3)
        assert len(tracer) == 1
        record = tracer.records[0]
        assert record.time == 1.0
        assert record.category == "msg"
        assert record.data == {"source": 3}

    def test_category_filtering(self):
        tracer = Tracer(enabled=True, categories={"network"})
        tracer.log(0.0, "network", "a")
        tracer.log(0.0, "cpu", "b")
        assert len(tracer) == 1
        assert tracer.filter("network")[0].message == "a"

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.log(0.0, "x", "y")
        tracer.clear()
        assert len(tracer) == 0

    def test_slots_reject_stray_attributes(self):
        tracer = Tracer()
        with pytest.raises(AttributeError):
            tracer.accidental = 1

    def test_unbounded_by_default(self):
        tracer = Tracer(enabled=True)
        for i in range(1000):
            tracer.log(float(i), "x", "y")
        assert len(tracer) == 1000
        assert tracer.dropped == 0

    def test_max_records_ring_buffer_keeps_newest(self):
        tracer = Tracer(enabled=True, max_records=3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for i in range(10):
                tracer.log(float(i), "x", f"m{i}")
        assert len(tracer) == 3
        assert [r.message for r in tracer.records] == ["m7", "m8", "m9"]
        assert tracer.dropped == 7

    def test_first_drop_warns_once(self):
        tracer = Tracer(enabled=True, max_records=2)
        tracer.log(0.0, "x", "a")
        tracer.log(1.0, "x", "b")
        with pytest.warns(RuntimeWarning, match="max_records=2"):
            tracer.log(2.0, "x", "c")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tracer.log(3.0, "x", "d")  # second drop stays silent
        assert tracer.dropped == 2

    def test_clear_resets_drop_state(self):
        tracer = Tracer(enabled=True, max_records=1)
        tracer.log(0.0, "x", "a")
        with pytest.warns(RuntimeWarning):
            tracer.log(1.0, "x", "b")
        tracer.clear()
        assert tracer.dropped == 0
        tracer.log(2.0, "x", "c")
        with pytest.warns(RuntimeWarning):
            tracer.log(3.0, "x", "d")

    def test_max_records_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_records=0)


class TestMonitorExtendFastPaths:
    """The single-pass / zero-copy ``extend`` added by the PR-4 perf work."""

    def test_extend_accepts_ndarrays(self):
        import numpy as np

        mon = Monitor()
        mon.extend(np.arange(4, dtype=float), np.array([1.0, 2.0, 3.0, 4.0]))
        assert mon.count == 4
        assert list(mon.values) == [1.0, 2.0, 3.0, 4.0]
        assert list(mon.times) == [0.0, 1.0, 2.0, 3.0]

    def test_extend_ndarray_length_mismatch_leaves_monitor_untouched(self):
        import numpy as np

        mon = Monitor()
        mon.record(0.0, 9.0)
        with pytest.raises(ValueError):
            mon.extend(np.zeros(3), np.zeros(2))
        assert mon.count == 1
        assert list(mon.values) == [9.0]

    def test_extend_generator_consumed_single_pass(self):
        mon = Monitor()
        consumed = []

        def times():
            for t in (0.0, 1.0, 2.0):
                consumed.append(t)
                yield t

        mon.extend(times(), iter([5.0, 6.0, 7.0]))
        assert consumed == [0.0, 1.0, 2.0]
        assert list(mon.values) == [5.0, 6.0, 7.0]

    def test_extend_generator_length_mismatch_rejected(self):
        mon = Monitor()
        with pytest.raises(ValueError):
            mon.extend(iter([0.0, 1.0]), iter([5.0]))
        assert mon.count == 0

    def test_extend_rejects_multidimensional_arrays(self):
        import numpy as np

        with pytest.raises(ValueError):
            Monitor().extend(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_extend_casts_integer_arrays(self):
        import numpy as np

        mon = Monitor()
        mon.extend(np.arange(3), np.array([1, 2, 3]))
        assert list(mon.values) == [1.0, 2.0, 3.0]

    def test_values_snapshot_is_independent(self):
        mon = Monitor()
        mon.record(0.0, 1.0)
        snapshot = mon.values
        snapshot[0] = 99.0
        assert mon.mean() == 1.0

    def test_record_after_reading_stats(self):
        # Stats use transient zero-copy views of the buffer; they must not
        # keep the buffer exported (which would block further appends).
        mon = Monitor()
        mon.record(0.0, 1.0)
        assert mon.mean() == 1.0
        assert mon.values is not None
        mon.record(1.0, 3.0)
        assert mon.mean() == 2.0

    def test_monitor_has_no_dict(self):
        assert not hasattr(Monitor(), "__dict__")
        assert not hasattr(TimeWeightedMonitor(), "__dict__")
