"""Unit tests for monitors and tracing."""

from __future__ import annotations

import math

import pytest

from repro.des.monitor import Monitor, TimeWeightedMonitor, Tracer


class TestMonitor:
    def test_empty_monitor_stats_are_nan(self):
        mon = Monitor()
        assert math.isnan(mon.mean())
        assert math.isnan(mon.minimum())
        assert math.isnan(mon.maximum())
        assert mon.count == 0

    def test_record_and_statistics(self):
        mon = Monitor("latency")
        for t, v in enumerate([2.0, 4.0, 6.0, 8.0]):
            mon.record(float(t), v)
        assert mon.mean() == pytest.approx(5.0)
        assert mon.minimum() == 2.0
        assert mon.maximum() == 8.0
        assert mon.std() == pytest.approx(2.581988897, rel=1e-6)
        assert mon.percentile(50) == pytest.approx(5.0)

    def test_extend_requires_matching_lengths(self):
        mon = Monitor()
        with pytest.raises(ValueError):
            mon.extend([1.0, 2.0], [1.0])

    def test_extend_and_len(self):
        mon = Monitor()
        mon.extend([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert len(mon) == 3
        assert list(mon.values) == [1.0, 2.0, 3.0]

    def test_truncated_removes_warmup(self):
        mon = Monitor()
        mon.extend(range(10), [100.0] * 5 + [1.0] * 5)
        steady = mon.truncated(5)
        assert steady.count == 5
        assert steady.mean() == pytest.approx(1.0)

    def test_truncated_negative_rejected(self):
        with pytest.raises(ValueError):
            Monitor().truncated(-1)

    def test_reset(self):
        mon = Monitor()
        mon.record(0.0, 1.0)
        mon.reset()
        assert mon.count == 0

    def test_summary_keys(self):
        mon = Monitor()
        mon.extend(range(100), [float(i) for i in range(100)])
        summary = mon.summary()
        assert set(summary) == {"count", "mean", "std", "min", "max", "p50", "p95", "p99"}
        assert summary["count"] == 100


class TestTimeWeightedMonitor:
    def test_time_average_piecewise_constant(self):
        mon = TimeWeightedMonitor(initial=0.0)
        mon.update(2.0, 4.0)   # level 0 on [0, 2), then 4
        mon.update(6.0, 1.0)   # level 4 on [2, 6), then 1
        # Average over [0, 10): (0*2 + 4*4 + 1*4) / 10 = 2.0
        assert mon.time_average(now=10.0) == pytest.approx(2.0)

    def test_increment_decrement(self):
        mon = TimeWeightedMonitor()
        mon.increment(1.0)
        mon.increment(2.0)
        mon.decrement(3.0)
        assert mon.current == 1.0
        assert mon.maximum == 2.0
        assert mon.minimum == 0.0

    def test_time_going_backwards_rejected(self):
        mon = TimeWeightedMonitor()
        mon.update(5.0, 1.0)
        with pytest.raises(ValueError):
            mon.update(4.0, 2.0)

    def test_time_average_before_last_update_rejected(self):
        mon = TimeWeightedMonitor()
        mon.update(5.0, 1.0)
        with pytest.raises(ValueError):
            mon.time_average(now=1.0)

    def test_zero_horizon_returns_current(self):
        mon = TimeWeightedMonitor(initial=3.0, start_time=2.0)
        assert mon.time_average(now=2.0) == 3.0


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        tracer.log(0.0, "msg", "hello")
        assert len(tracer) == 0

    def test_enabled_records(self):
        tracer = Tracer(enabled=True)
        tracer.log(1.0, "msg", "hello", source=3)
        assert len(tracer) == 1
        record = tracer.records[0]
        assert record.time == 1.0
        assert record.category == "msg"
        assert record.data == {"source": 3}

    def test_category_filtering(self):
        tracer = Tracer(enabled=True, categories={"network"})
        tracer.log(0.0, "network", "a")
        tracer.log(0.0, "cpu", "b")
        assert len(tracer) == 1
        assert tracer.filter("network")[0].message == "a"

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.log(0.0, "x", "y")
        tracer.clear()
        assert len(tracer) == 0
