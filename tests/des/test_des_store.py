"""Unit tests for DES stores and containers."""

from __future__ import annotations

import pytest

from repro.des.store import Container, FilterStore, Store


class TestStore:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_put_then_get(self, env):
        store = Store(env)
        received = []

        def producer(env, store):
            yield store.put("msg-1")
            yield store.put("msg-2")

        def consumer(env, store):
            item = yield store.get()
            received.append(item)
            item = yield store.get()
            received.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert received == ["msg-1", "msg-2"]

    def test_get_blocks_until_item_available(self, env):
        store = Store(env)
        times = []

        def consumer(env, store):
            item = yield store.get()
            times.append((item, env.now))

        def producer(env, store):
            yield env.timeout(5.0)
            yield store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert times == [("late", 5.0)]

    def test_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def consumer(env, store):
            yield env.timeout(3.0)
            item = yield store.get()
            log.append((f"got-{item}", env.now))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert ("put-a", 0.0) in log
        assert ("got-a", 3.0) in log
        assert ("put-b", 3.0) in log

    def test_fifo_order(self, env):
        store = Store(env)
        out = []

        def producer(env, store):
            for i in range(5):
                yield store.put(i)

        def consumer(env, store):
            for _ in range(5):
                item = yield store.get()
                out.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert out == [0, 1, 2, 3, 4]

    def test_len_reflects_items(self, env):
        store = Store(env)

        def producer(env, store):
            yield store.put("x")

        env.process(producer(env, store))
        env.run()
        assert len(store) == 1


class TestFilterStore:
    def test_filtered_get(self, env):
        store = FilterStore(env)
        received = []

        def producer(env, store):
            yield store.put({"kind": "data", "id": 1})
            yield store.put({"kind": "control", "id": 2})

        def consumer(env, store):
            item = yield store.get(lambda m: m["kind"] == "control")
            received.append(item["id"])

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert received == [2]
        # The non-matching item is still in the store.
        assert len(store) == 1

    def test_waits_for_matching_item(self, env):
        store = FilterStore(env)
        times = []

        def consumer(env, store):
            yield store.get(lambda item: item > 10)
            times.append(env.now)

        def producer(env, store):
            yield store.put(1)
            yield env.timeout(4.0)
            yield store.put(99)

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert times == [4.0]


class TestContainer:
    def test_invalid_parameters(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=20)

    def test_put_and_get_amounts(self, env):
        tank = Container(env, capacity=100, init=50)
        levels = []

        def actor(env, tank):
            yield tank.get(30)
            levels.append(tank.level)
            yield tank.put(10)
            levels.append(tank.level)

        env.process(actor(env, tank))
        env.run()
        assert levels == [20, 30]

    def test_get_blocks_until_enough(self, env):
        tank = Container(env, capacity=100, init=0)
        times = []

        def consumer(env, tank):
            yield tank.get(10)
            times.append(env.now)

        def producer(env, tank):
            yield env.timeout(2.0)
            yield tank.put(5)
            yield env.timeout(2.0)
            yield tank.put(5)

        env.process(consumer(env, tank))
        env.process(producer(env, tank))
        env.run()
        assert times == [4.0]

    def test_put_blocks_at_capacity(self, env):
        tank = Container(env, capacity=10, init=10)
        times = []

        def producer(env, tank):
            yield tank.put(5)
            times.append(env.now)

        def consumer(env, tank):
            yield env.timeout(7.0)
            yield tank.get(5)

        env.process(producer(env, tank))
        env.process(consumer(env, tank))
        env.run()
        assert times == [7.0]

    def test_non_positive_amounts_rejected(self, env):
        tank = Container(env, capacity=10, init=5)
        with pytest.raises(ValueError):
            tank.put(0)
        with pytest.raises(ValueError):
            tank.get(-1)
