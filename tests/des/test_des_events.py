"""Unit tests for the DES event primitives."""

from __future__ import annotations

import pytest

from repro.des.core import Environment
from repro.des.events import ConditionValue
from repro.errors import SimulationError


class TestEventLifecycle:
    def test_new_event_is_untriggered(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self, env):
        event = env.event()
        with pytest.raises(AttributeError):
            _ = event.value

    def test_succeed_sets_value_and_ok(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_sets_not_ok(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        assert event.triggered
        assert not event.ok
        assert isinstance(event.value, RuntimeError)

    def test_processed_after_run(self, env):
        event = env.event()
        event.succeed("done")
        env.run()
        assert event.processed

    def test_callbacks_invoked_with_event(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda ev: seen.append(ev.value))
        event.succeed(7)
        env.run()
        assert seen == [7]

    def test_repr_contains_value_after_trigger(self, env):
        event = env.event()
        event.succeed("xyz")
        assert "xyz" in repr(event)


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_fires_at_delay(self, env):
        times = []

        def proc(env):
            yield env.timeout(2.5)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [2.5]

    def test_timeout_carries_value(self, env):
        results = []

        def proc(env):
            value = yield env.timeout(1.0, value="payload")
            results.append(value)

        env.process(proc(env))
        env.run()
        assert results == ["payload"]

    def test_zero_delay_allowed(self, env):
        timeout = env.timeout(0.0)
        env.run()
        assert timeout.processed

    def test_delay_property(self, env):
        assert env.timeout(3.25).delay == 3.25


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        order = []

        def waiter(env, t1, t2):
            result = yield env.all_of([t1, t2])
            order.append((env.now, len(result)))

        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        env.process(waiter(env, t1, t2))
        env.run()
        assert order == [(3.0, 2)]

    def test_any_of_fires_on_first(self, env):
        order = []

        def waiter(env, t1, t2):
            yield env.any_of([t1, t2])
            order.append(env.now)

        t1 = env.timeout(1.0)
        t2 = env.timeout(3.0)
        env.process(waiter(env, t1, t2))
        env.run()
        assert order == [1.0]

    def test_and_operator(self, env):
        reached = []

        def waiter(env):
            yield env.timeout(1.0) & env.timeout(2.0)
            reached.append(env.now)

        env.process(waiter(env))
        env.run()
        assert reached == [2.0]

    def test_or_operator(self, env):
        reached = []

        def waiter(env):
            yield env.timeout(1.0) | env.timeout(2.0)
            reached.append(env.now)

        env.process(waiter(env))
        env.run()
        assert reached == [1.0]

    def test_empty_all_of_fires_immediately(self, env):
        cond = env.all_of([])
        assert cond.triggered

    def test_condition_value_mapping(self, env):
        collected = {}

        def waiter(env, t1, t2):
            result = yield env.all_of([t1, t2])
            collected["t1"] = result[t1]
            collected["t2"] = result[t2]

        t1 = env.timeout(1.0, value=10)
        t2 = env.timeout(2.0, value=20)
        env.process(waiter(env, t1, t2))
        env.run()
        assert collected == {"t1": 10, "t2": 20}

    def test_condition_value_equality_with_dict(self, env):
        t1 = env.timeout(0.5, value=1)
        cond = env.all_of([t1])
        env.run()
        value = cond.value
        assert isinstance(value, ConditionValue)
        assert value == {t1: 1}
        assert list(value.keys()) == [t1]
        assert list(value.values()) == [1]

    def test_mixing_environments_rejected(self, env):
        other = Environment()
        t_other = other.timeout(1.0)
        with pytest.raises(ValueError):
            env.all_of([t_other])

    def test_failed_child_fails_condition(self, env):
        captured = []

        def waiter(env, bad):
            try:
                yield env.all_of([bad, env.timeout(5.0)])
            except RuntimeError as exc:
                captured.append(str(exc))

        bad = env.event()
        env.process(waiter(env, bad))
        bad.fail(RuntimeError("child failed"))
        env.run()
        assert captured == ["child failed"]


class TestAbsoluteTimeout:
    def test_fires_at_exact_absolute_time(self, env):
        log = []

        def proc(env):
            yield env.timeout(1.5)
            yield env.timeout_at(4.25)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [4.25]

    def test_scheduling_in_the_past_rejected(self, env):
        env.timeout(1.0)
        env.run()
        with pytest.raises(ValueError):
            env.timeout_at(0.5)

    def test_exposes_target_time_and_value(self, env):
        event = env.timeout_at(3.0, value="done")
        assert event.at == 3.0
        env.run()
        assert event.value == "done"

    def test_same_time_as_now_allowed(self, env):
        event = env.timeout_at(0.0)
        env.run()
        assert event.processed

    def test_orders_with_timeouts_at_same_time(self, env):
        order = []

        def a(env):
            yield env.timeout(2.0)
            order.append("relative")

        def b(env):
            yield env.timeout_at(2.0)
            order.append("absolute")

        env.process(a(env))
        env.process(b(env))
        env.run()
        # Same time, same NORMAL priority: creation order breaks the tie.
        assert order == ["relative", "absolute"]


class TestEventSlots:
    """The event classes must not carry a per-instance ``__dict__``.

    ``Timeout.__slots__`` is only effective because every class on its MRO
    (``Event`` included) declares ``__slots__``; a single slot-less base
    would silently re-introduce a dict on each of the millions of events a
    simulation allocates.
    """

    def test_timeout_has_no_dict(self, env):
        assert not hasattr(env.timeout(1.0), "__dict__")

    def test_event_family_has_no_dict(self, env):
        from repro.des.events import AbsoluteTimeout, AllOf, AnyOf, Initialize

        assert not hasattr(env.event(), "__dict__")
        assert not hasattr(env.timeout_at(1.0), "__dict__")
        assert not hasattr(env.all_of([]), "__dict__")
        assert not hasattr(env.any_of([]), "__dict__")

        def proc(env):
            yield env.timeout(1.0)

        process = env.process(proc(env))
        assert not hasattr(process, "__dict__")
        # Initialize is created internally by Process; build one directly.
        assert not hasattr(Initialize(env, process), "__dict__")

    def test_resource_and_store_events_have_no_dict(self, env):
        from repro.des.resources import PriorityResource, Resource
        from repro.des.store import Container, Store

        resource = Resource(env)
        request = resource.request()
        assert not hasattr(request, "__dict__")
        assert not hasattr(resource.release(request), "__dict__")
        priority_resource = PriorityResource(env)
        assert not hasattr(priority_resource.request(priority=1), "__dict__")
        store = Store(env)
        assert not hasattr(store.put("item"), "__dict__")
        assert not hasattr(store.get(), "__dict__")
        container = Container(env, capacity=10.0)
        assert not hasattr(container.put(1.0), "__dict__")
        assert not hasattr(container.get(1.0), "__dict__")

    def test_message_has_no_dict(self):
        from repro.simulation.message import Message

        assert not hasattr(Message(0, (0, 0), (0, 1), 1024.0, 0.0), "__dict__")
