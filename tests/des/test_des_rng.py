"""Unit tests for random streams and variate generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.rng import RandomStreams, VariateGenerator


class TestRandomStreams:
    def test_same_seed_same_streams(self):
        a = RandomStreams(seed=7).stream("arrivals")
        b = RandomStreams(seed=7).stream("arrivals")
        assert [a.exponential(1.0) for _ in range(5)] == [b.exponential(1.0) for _ in range(5)]

    def test_different_names_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.stream("arrivals")
        b = streams.stream("service")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x")
        b = RandomStreams(seed=2).stream("x")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_stream_cache_returns_same_object(self):
        streams = RandomStreams(seed=3)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_bulk(self):
        streams = RandomStreams(seed=3)
        bundle = streams.streams(["a", "b"])
        assert set(bundle) == {"a", "b"}

    def test_spawn_creates_independent_replication(self):
        base = RandomStreams(seed=5)
        rep = base.spawn(1)
        assert base.stream("x").uniform() != rep.stream("x").uniform()

    def test_order_of_creation_does_not_matter(self):
        s1 = RandomStreams(seed=11)
        s2 = RandomStreams(seed=11)
        # Create in different orders.
        a1 = s1.stream("alpha")
        _ = s1.stream("beta")
        _ = s2.stream("beta")
        a2 = s2.stream("alpha")
        assert a1.exponential(2.0) == a2.exponential(2.0)


class TestVariateGenerator:
    @pytest.fixture
    def gen(self) -> VariateGenerator:
        return RandomStreams(seed=42).stream("test")

    def test_exponential_mean(self, gen):
        samples = [gen.exponential(2.0) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.05)
        assert min(samples) > 0

    def test_exponential_rate(self, gen):
        samples = [gen.exponential_rate(4.0) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(0.25, rel=0.05)

    def test_exponential_invalid(self, gen):
        with pytest.raises(ValueError):
            gen.exponential(0.0)
        with pytest.raises(ValueError):
            gen.exponential_rate(-1.0)

    def test_uniform_bounds(self, gen):
        samples = [gen.uniform(2.0, 5.0) for _ in range(1000)]
        assert all(2.0 <= s < 5.0 for s in samples)
        with pytest.raises(ValueError):
            gen.uniform(5.0, 2.0)

    def test_erlang_mean_and_lower_variance(self, gen):
        exp = [gen.exponential(3.0) for _ in range(20_000)]
        erl = [gen.erlang(4, 3.0) for _ in range(20_000)]
        assert np.mean(erl) == pytest.approx(3.0, rel=0.05)
        assert np.var(erl) < np.var(exp)

    def test_erlang_invalid(self, gen):
        with pytest.raises(ValueError):
            gen.erlang(0, 1.0)

    def test_hyperexponential_mean(self, gen):
        samples = [gen.hyperexponential([1.0, 4.0], [0.5, 0.5]) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(2.5, rel=0.05)

    def test_hyperexponential_invalid_probs(self, gen):
        with pytest.raises(ValueError):
            gen.hyperexponential([1.0, 2.0], [0.7, 0.7])

    def test_integer_bounds_inclusive(self, gen):
        samples = {gen.integer(0, 3) for _ in range(500)}
        assert samples == {0, 1, 2, 3}

    def test_choice_and_weights(self, gen):
        items = ["a", "b", "c"]
        assert gen.choice(items) in items
        biased = [gen.choice(items, probs=[0.0, 1.0, 0.0]) for _ in range(20)]
        assert set(biased) == {"b"}

    def test_choice_empty_rejected(self, gen):
        with pytest.raises(ValueError):
            gen.choice([])

    def test_bernoulli_probability(self, gen):
        trues = sum(gen.bernoulli(0.3) for _ in range(20_000))
        assert trues / 20_000 == pytest.approx(0.3, abs=0.02)
        with pytest.raises(ValueError):
            gen.bernoulli(1.5)

    def test_deterministic(self, gen):
        assert gen.deterministic(3.5) == 3.5

    def test_geometric_positive(self, gen):
        assert gen.geometric(0.5) >= 1
        with pytest.raises(ValueError):
            gen.geometric(0.0)

    def test_normal_and_lognormal_validation(self, gen):
        with pytest.raises(ValueError):
            gen.normal(0.0, -1.0)
        with pytest.raises(ValueError):
            gen.lognormal(0.0, -1.0)
        assert gen.lognormal(0.0, 0.5) > 0
