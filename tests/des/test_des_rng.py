"""Unit tests for random streams and variate generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.rng import RandomStreams, VariateGenerator


class TestRandomStreams:
    def test_same_seed_same_streams(self):
        a = RandomStreams(seed=7).stream("arrivals")
        b = RandomStreams(seed=7).stream("arrivals")
        assert [a.exponential(1.0) for _ in range(5)] == [b.exponential(1.0) for _ in range(5)]

    def test_different_names_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.stream("arrivals")
        b = streams.stream("service")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x")
        b = RandomStreams(seed=2).stream("x")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_stream_cache_returns_same_object(self):
        streams = RandomStreams(seed=3)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_bulk(self):
        streams = RandomStreams(seed=3)
        bundle = streams.streams(["a", "b"])
        assert set(bundle) == {"a", "b"}

    def test_spawn_creates_independent_replication(self):
        base = RandomStreams(seed=5)
        rep = base.spawn(1)
        assert base.stream("x").uniform() != rep.stream("x").uniform()

    def test_order_of_creation_does_not_matter(self):
        s1 = RandomStreams(seed=11)
        s2 = RandomStreams(seed=11)
        # Create in different orders.
        a1 = s1.stream("alpha")
        _ = s1.stream("beta")
        _ = s2.stream("beta")
        a2 = s2.stream("alpha")
        assert a1.exponential(2.0) == a2.exponential(2.0)


class TestVariateGenerator:
    @pytest.fixture
    def gen(self) -> VariateGenerator:
        return RandomStreams(seed=42).stream("test")

    def test_exponential_mean(self, gen):
        samples = [gen.exponential(2.0) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.05)
        assert min(samples) > 0

    def test_exponential_rate(self, gen):
        samples = [gen.exponential_rate(4.0) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(0.25, rel=0.05)

    def test_exponential_invalid(self, gen):
        with pytest.raises(ValueError):
            gen.exponential(0.0)
        with pytest.raises(ValueError):
            gen.exponential_rate(-1.0)

    def test_uniform_bounds(self, gen):
        samples = [gen.uniform(2.0, 5.0) for _ in range(1000)]
        assert all(2.0 <= s < 5.0 for s in samples)
        with pytest.raises(ValueError):
            gen.uniform(5.0, 2.0)

    def test_erlang_mean_and_lower_variance(self, gen):
        exp = [gen.exponential(3.0) for _ in range(20_000)]
        erl = [gen.erlang(4, 3.0) for _ in range(20_000)]
        assert np.mean(erl) == pytest.approx(3.0, rel=0.05)
        assert np.var(erl) < np.var(exp)

    def test_erlang_invalid(self, gen):
        with pytest.raises(ValueError):
            gen.erlang(0, 1.0)

    def test_hyperexponential_mean(self, gen):
        samples = [gen.hyperexponential([1.0, 4.0], [0.5, 0.5]) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(2.5, rel=0.05)

    def test_hyperexponential_invalid_probs(self, gen):
        with pytest.raises(ValueError):
            gen.hyperexponential([1.0, 2.0], [0.7, 0.7])

    def test_integer_bounds_inclusive(self, gen):
        samples = {gen.integer(0, 3) for _ in range(500)}
        assert samples == {0, 1, 2, 3}

    def test_choice_and_weights(self, gen):
        items = ["a", "b", "c"]
        assert gen.choice(items) in items
        biased = [gen.choice(items, probs=[0.0, 1.0, 0.0]) for _ in range(20)]
        assert set(biased) == {"b"}

    def test_choice_empty_rejected(self, gen):
        with pytest.raises(ValueError):
            gen.choice([])

    def test_bernoulli_probability(self, gen):
        trues = sum(gen.bernoulli(0.3) for _ in range(20_000))
        assert trues / 20_000 == pytest.approx(0.3, abs=0.02)
        with pytest.raises(ValueError):
            gen.bernoulli(1.5)

    def test_deterministic(self, gen):
        assert gen.deterministic(3.5) == 3.5

    def test_geometric_positive(self, gen):
        assert gen.geometric(0.5) >= 1
        with pytest.raises(ValueError):
            gen.geometric(0.0)

    def test_normal_and_lognormal_validation(self, gen):
        with pytest.raises(ValueError):
            gen.normal(0.0, -1.0)
        with pytest.raises(ValueError):
            gen.lognormal(0.0, -1.0)
        assert gen.lognormal(0.0, 0.5) > 0


class TestVariateStreams:
    """Batched streams must reproduce the scalar draw sequence bit-for-bit."""

    def _pair(self, name: str = "s"):
        return RandomStreams(seed=42).stream(name), RandomStreams(seed=42).stream(name)

    def test_exponential_stream_matches_scalar_sequence(self):
        scalar, batched = self._pair()
        stream = batched.exponential_stream(2.5, block_size=16)
        assert [stream() for _ in range(50)] == [scalar.exponential(2.5) for _ in range(50)]

    def test_exponential_rate_stream_matches_scalar_sequence(self):
        scalar, batched = self._pair()
        stream = batched.exponential_rate_stream(0.25, block_size=8)
        assert [stream() for _ in range(30)] == [
            scalar.exponential_rate(0.25) for _ in range(30)
        ]

    def test_integer_stream_matches_scalar_sequence(self):
        scalar, batched = self._pair()
        stream = batched.integer_stream(0, 30, block_size=8)
        assert [stream() for _ in range(40)] == [scalar.integer(0, 30) for _ in range(40)]

    def test_uniform_stream_matches_scalar_sequence(self):
        scalar, batched = self._pair()
        stream = batched.uniform_stream(1.0, 3.0, block_size=4)
        assert [stream() for _ in range(20)] == [scalar.uniform(1.0, 3.0) for _ in range(20)]

    def test_erlang_stream_matches_scalar_sequence(self):
        scalar, batched = self._pair()
        stream = batched.erlang_stream(3, 2.0, block_size=4)
        assert [stream() for _ in range(20)] == [scalar.erlang(3, 2.0) for _ in range(20)]

    def test_sequence_independent_of_block_size(self):
        draws = {}
        for block in (1, 2, 7, 64, 1024):
            gen = RandomStreams(seed=7).stream("x")
            stream = gen.exponential_stream(1.0, block_size=block)
            draws[block] = [stream() for _ in range(25)]
        assert len({tuple(v) for v in draws.values()}) == 1

    def test_geometric_block_growth(self):
        from repro.des.rng import VariateStream

        sizes = []

        def draw(n):
            sizes.append(n)
            return [0.0] * n

        stream = VariateStream(draw, block_size=512)
        for _ in range(64 + 128 + 256 + 1):
            stream()
        assert sizes == [64, 128, 256, 512]

    def test_stream_returns_python_scalars(self):
        gen = RandomStreams(seed=1).stream("x")
        assert type(gen.exponential_stream(1.0)()) is float
        assert type(gen.integer_stream(0, 5)()) is int

    def test_remaining_counts_down(self):
        gen = RandomStreams(seed=1).stream("x")
        stream = gen.uniform_stream(block_size=4)
        assert stream.remaining == 0  # lazy: nothing drawn yet
        stream()
        assert stream.remaining == 3

    def test_parameter_validation(self):
        gen = RandomStreams(seed=1).stream("x")
        with pytest.raises(ValueError):
            gen.exponential_stream(0.0)
        with pytest.raises(ValueError):
            gen.exponential_rate_stream(-1.0)
        with pytest.raises(ValueError):
            gen.integer_stream(5, 4)
        with pytest.raises(ValueError):
            gen.uniform_stream(2.0, 1.0)
        with pytest.raises(ValueError):
            gen.erlang_stream(0, 1.0)
        with pytest.raises(ValueError):
            gen.exponential_stream(1.0, block_size=0)

    def test_generator_has_no_dict(self):
        gen = RandomStreams(seed=1).stream("x")
        assert not hasattr(gen, "__dict__")
        assert not hasattr(gen.exponential_stream(1.0), "__dict__")


class TestBatchedSamplersAndChoosers:
    """The batched plumbing through distributions, arrivals, destinations."""

    def test_exponential_distribution_sampler_matches_sample(self):
        from repro.queueing.distributions import Exponential

        dist = Exponential(0.125)
        scalar = RandomStreams(seed=9).stream("svc")
        batched = RandomStreams(seed=9).stream("svc")
        sampler = dist.sampler(batched)
        assert [sampler() for _ in range(40)] == [dist.sample(scalar) for _ in range(40)]

    def test_deterministic_distribution_sampler_is_constant(self):
        from repro.queueing.distributions import Deterministic

        sampler = Deterministic(2.5).sampler(RandomStreams(seed=9).stream("svc"))
        assert [sampler() for _ in range(3)] == [2.5, 2.5, 2.5]

    def test_poisson_arrivals_sampler_matches_interarrival(self):
        from repro.workload.arrivals import PoissonArrivals

        process = PoissonArrivals(rate=0.25)
        scalar = RandomStreams(seed=4).stream("arr")
        batched = RandomStreams(seed=4).stream("arr")
        sampler = process.sampler(batched)
        assert [sampler() for _ in range(30)] == [
            process.interarrival(scalar) for _ in range(30)
        ]

    def test_uniform_destinations_chooser_matches_choose(self):
        from repro.workload.destinations import UniformDestinations

        policy = UniformDestinations([4, 4, 4])
        scalar = RandomStreams(seed=6).stream("dest")
        batched = RandomStreams(seed=6).stream("dest")
        chooser = policy.chooser((1, 2), batched)
        assert [chooser() for _ in range(60)] == [
            policy.choose((1, 2), scalar) for _ in range(60)
        ]

    def test_localized_destinations_chooser_falls_back_to_scalar(self):
        from repro.workload.destinations import LocalizedDestinations

        policy = LocalizedDestinations([4, 4], locality=0.5)
        scalar = RandomStreams(seed=6).stream("dest")
        batched = RandomStreams(seed=6).stream("dest")
        chooser = policy.chooser((0, 1), batched)
        assert [chooser() for _ in range(40)] == [
            policy.choose((0, 1), scalar) for _ in range(40)
        ]
