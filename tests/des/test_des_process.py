"""Unit tests for DES processes and interrupts."""

from __future__ import annotations

import pytest

from repro.des.process import Interrupt, Process
from repro.errors import SimulationError


class TestProcessBasics:
    def test_process_requires_generator(self, env):
        with pytest.raises(TypeError):
            Process(env, lambda: None)  # type: ignore[arg-type]

    def test_process_is_alive_until_done(self, env):
        def worker(env):
            yield env.timeout(1.0)

        proc = env.process(worker(env))
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_process_return_value(self, env):
        def worker(env):
            yield env.timeout(1.0)
            return 99

        proc = env.process(worker(env))
        env.run()
        assert proc.value == 99

    def test_process_name(self, env):
        def my_worker(env):
            yield env.timeout(1.0)

        proc = env.process(my_worker(env))
        assert proc.name == "my_worker"
        assert "my_worker" in repr(proc)

    def test_waiting_for_another_process(self, env):
        order = []

        def child(env):
            yield env.timeout(2.0)
            order.append("child")
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            order.append(f"parent:{result}")

        env.process(parent(env))
        env.run()
        assert order == ["child", "parent:child-result"]

    def test_yielding_non_event_fails_process(self, env):
        def bad(env):
            yield 42  # not an Event  # repro: noqa REP401 -- deliberately bad

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_in_process_propagates_to_waiter(self, env):
        seen = []

        def failing(env):
            yield env.timeout(1.0)
            raise KeyError("inner")

        def waiter(env):
            try:
                yield env.process(failing(env))
            except KeyError as exc:
                seen.append(str(exc))

        env.process(waiter(env))
        env.run()
        assert seen == ["'inner'"]

    def test_sequential_timeouts_accumulate(self, env):
        trace = []

        def worker(env):
            for _ in range(3):
                yield env.timeout(1.5)
                trace.append(env.now)

        env.process(worker(env))
        env.run()
        assert trace == [1.5, 3.0, 4.5]

    def test_already_processed_event_resumes_immediately(self, env):
        """Yielding an event that already fired should not deadlock."""
        results = []

        def worker(env, ready):
            yield env.timeout(2.0)
            value = yield ready  # ready fired at t=0
            results.append((env.now, value))

        ready = env.event()
        ready.succeed("early")
        env.process(worker(env, ready))
        env.run()
        assert results == [(2.0, "early")]


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim(env):
            try:
                yield env.timeout(10.0)
            except Interrupt as interrupt:
                causes.append((interrupt.cause, env.now))

        def attacker(env, target):
            yield env.timeout(1.0)
            target.interrupt(cause="stop now")

        target = env.process(victim(env))
        env.process(attacker(env, target))
        env.run()
        # The interrupt is delivered at t = 1.0 (the abandoned timeout still
        # drains from the queue afterwards, which is fine — nobody waits on it).
        assert causes == [("stop now", 1.0)]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim(env):
            try:
                yield env.timeout(10.0)
            except Interrupt:
                log.append(("interrupted", env.now))
            yield env.timeout(2.0)
            log.append(("done", env.now))

        def attacker(env, target):
            yield env.timeout(3.0)
            target.interrupt()

        target = env.process(victim(env))
        env.process(attacker(env, target))
        env.run()
        assert log == [("interrupted", 3.0), ("done", 5.0)]

    def test_interrupting_dead_process_raises(self, env):
        def quick(env):
            yield env.timeout(1.0)

        proc = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_self_interrupt_rejected(self, env):
        errors = []

        def selfish(env):
            yield env.timeout(1.0)
            try:
                env.active_process.interrupt()
            except SimulationError as exc:
                errors.append(str(exc))

        env.process(selfish(env))
        env.run()
        assert len(errors) == 1

    def test_interrupt_str(self):
        interrupt = Interrupt("why")
        assert "why" in str(interrupt)
        assert interrupt.cause == "why"
