"""Unit tests for DES resources (FIFO, priority, preemptive)."""

from __future__ import annotations

import pytest

from repro.des.process import Interrupt
from repro.des.resources import Preempted, PreemptiveResource, PriorityResource, Resource


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_single_server_serialises_users(self, env):
        completions = []
        resource = Resource(env, capacity=1)

        def user(env, resource, name, service):
            with resource.request() as req:
                yield req
                yield env.timeout(service)
            completions.append((name, env.now))

        for i in range(3):
            env.process(user(env, resource, i, 2.0))
        env.run()
        assert completions == [(0, 2.0), (1, 4.0), (2, 6.0)]

    def test_multi_server_parallelism(self, env):
        completions = []
        resource = Resource(env, capacity=2)

        def user(env, resource, name):
            with resource.request() as req:
                yield req
                yield env.timeout(3.0)
            completions.append((name, env.now))

        for i in range(4):
            env.process(user(env, resource, i))
        env.run()
        assert completions == [(0, 3.0), (1, 3.0), (2, 6.0), (3, 6.0)]

    def test_count_and_queue_lengths(self, env):
        resource = Resource(env, capacity=1)
        states = []

        def user(env, resource):
            with resource.request() as req:
                yield req
                states.append((resource.count, len(resource.queue)))
                yield env.timeout(1.0)

        env.process(user(env, resource))
        env.process(user(env, resource))
        env.run()
        # The first user observed one waiting request; the second none.
        assert states == [(1, 1), (1, 0)]

    def test_release_without_context_manager(self, env):
        resource = Resource(env, capacity=1)
        done = []

        def user(env, resource):
            req = resource.request()
            yield req
            yield env.timeout(1.0)
            resource.release(req)
            done.append(env.now)

        env.process(user(env, resource))
        env.process(user(env, resource))
        env.run()
        assert done == [1.0, 2.0]

    def test_fifo_ordering(self, env):
        resource = Resource(env, capacity=1)
        order = []

        def user(env, resource, name, start):
            yield env.timeout(start)
            with resource.request() as req:
                yield req
                order.append(name)
                yield env.timeout(5.0)

        for i, start in enumerate([0.0, 1.0, 2.0, 3.0]):
            env.process(user(env, resource, i, start))
        env.run()
        assert order == [0, 1, 2, 3]

    def test_repr(self, env):
        resource = Resource(env, capacity=3)
        assert "capacity=3" in repr(resource)


class TestPriorityResource:
    def test_lower_priority_value_served_first(self, env):
        resource = PriorityResource(env, capacity=1)
        order = []

        def user(env, resource, name, priority, start):
            yield env.timeout(start)
            with resource.request(priority=priority) as req:
                yield req
                order.append(name)
                yield env.timeout(10.0)

        # The first user occupies the server; the others queue with priorities.
        env.process(user(env, resource, "first", 0, 0.0))
        env.process(user(env, resource, "low", 5, 1.0))
        env.process(user(env, resource, "high", 1, 2.0))
        env.run()
        assert order == ["first", "high", "low"]

    def test_fifo_within_same_priority(self, env):
        resource = PriorityResource(env, capacity=1)
        order = []

        def user(env, resource, name, start):
            yield env.timeout(start)
            with resource.request(priority=3) as req:
                yield req
                order.append(name)
                yield env.timeout(10.0)

        for i, start in enumerate([0.0, 1.0, 2.0]):
            env.process(user(env, resource, i, start))
        env.run()
        assert order == [0, 1, 2]


class TestPreemptiveResource:
    def test_preemption_interrupts_lower_priority(self, env):
        resource = PreemptiveResource(env, capacity=1)
        events = []

        def low(env, resource):
            with resource.request(priority=10) as req:
                yield req
                try:
                    yield env.timeout(10.0)
                    events.append("low-finished")
                except Interrupt as interrupt:
                    assert isinstance(interrupt.cause, Preempted)
                    events.append(("low-preempted", env.now))

        def high(env, resource):
            yield env.timeout(2.0)
            with resource.request(priority=0, preempt=True) as req:
                yield req
                events.append(("high-running", env.now))
                yield env.timeout(1.0)

        env.process(low(env, resource))
        env.process(high(env, resource))
        env.run()
        assert ("low-preempted", 2.0) in events
        assert ("high-running", 2.0) in events

    def test_no_preemption_when_flag_false(self, env):
        resource = PreemptiveResource(env, capacity=1)
        events = []

        def low(env, resource):
            with resource.request(priority=10) as req:
                yield req
                yield env.timeout(5.0)
                events.append(("low-finished", env.now))

        def polite_high(env, resource):
            yield env.timeout(1.0)
            with resource.request(priority=0, preempt=False) as req:
                yield req
                events.append(("high-running", env.now))

        env.process(low(env, resource))
        env.process(polite_high(env, resource))
        env.run()
        assert events == [("low-finished", 5.0), ("high-running", 5.0)]
