"""Unit tests for network technologies, switches, units and the §5 service models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.network.heterogeneous import HeterogeneousLinkMatrix
from repro.network.models import (
    BlockingNetworkModel,
    NonBlockingNetworkModel,
    build_network_model,
)
from repro.network.switch import PAPER_SWITCH, SwitchFabric
from repro.network.technologies import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    NetworkTechnology,
    TECHNOLOGY_PRESETS,
    get_technology,
)
from repro.network.units import (
    bandwidth_to_seconds_per_byte,
    bytes_per_s_to_mbps,
    mbps_to_bytes_per_s,
    ms_to_s,
    s_to_ms,
    s_to_us,
    us_to_s,
)


class TestUnits:
    def test_time_round_trips(self):
        assert s_to_us(us_to_s(80.0)) == pytest.approx(80.0)
        assert s_to_ms(ms_to_s(2.5)) == pytest.approx(2.5)

    def test_bandwidth_round_trip(self):
        assert bytes_per_s_to_mbps(mbps_to_bytes_per_s(94.0)) == pytest.approx(94.0)

    def test_beta_from_bandwidth(self):
        # 10.5 MB/s => 1/(10.5e6) s per byte.
        assert bandwidth_to_seconds_per_byte(10.5e6) == pytest.approx(1.0 / 10.5e6)
        with pytest.raises(ValueError):
            bandwidth_to_seconds_per_byte(0.0)


class TestTechnologies:
    def test_paper_table2_gigabit_ethernet(self):
        assert GIGABIT_ETHERNET.latency_s == pytest.approx(80e-6)
        assert GIGABIT_ETHERNET.bandwidth_bytes_per_s == pytest.approx(94e6)

    def test_paper_table2_fast_ethernet(self):
        assert FAST_ETHERNET.latency_s == pytest.approx(50e-6)
        assert FAST_ETHERNET.bandwidth_bytes_per_s == pytest.approx(10.5e6)

    def test_transmission_time_equation_10(self):
        # T = α + M·β for M = 1024 bytes on GE.
        expected = 80e-6 + 1024 / 94e6
        assert GIGABIT_ETHERNET.transmission_time(1024) == pytest.approx(expected)

    def test_transmission_time_validation(self):
        with pytest.raises(ConfigurationError):
            GIGABIT_ETHERNET.transmission_time(-1.0)

    def test_ge_faster_than_fe_for_large_messages(self):
        assert GIGABIT_ETHERNET.transmission_time(8192) < FAST_ETHERNET.transmission_time(8192)

    def test_fe_faster_for_tiny_messages(self):
        # FE has the lower latency in Table 2 (50 vs 80 µs).
        assert FAST_ETHERNET.transmission_time(1) < GIGABIT_ETHERNET.transmission_time(1)

    def test_invalid_technology_parameters(self):
        with pytest.raises(ConfigurationError):
            NetworkTechnology("bad", latency_s=-1.0, bandwidth_bytes_per_s=1e6)
        with pytest.raises(ConfigurationError):
            NetworkTechnology("bad", latency_s=1e-6, bandwidth_bytes_per_s=0.0)

    def test_presets_lookup(self):
        assert get_technology("GE") is GIGABIT_ETHERNET
        assert get_technology("fast-ethernet") is FAST_ETHERNET
        assert "myrinet" in TECHNOLOGY_PRESETS
        with pytest.raises(ConfigurationError):
            get_technology("carrier-pigeon")

    def test_scaled(self):
        doubled = FAST_ETHERNET.scaled(bandwidth_factor=2.0)
        assert doubled.bandwidth_bytes_per_s == pytest.approx(21e6)
        with pytest.raises(ConfigurationError):
            FAST_ETHERNET.scaled(bandwidth_factor=0.0)

    def test_str(self):
        assert "94.0 MB/s" in str(GIGABIT_ETHERNET)


class TestSwitchFabric:
    def test_paper_switch(self):
        assert PAPER_SWITCH.ports == 24
        assert PAPER_SWITCH.latency_s == pytest.approx(10e-6)

    def test_traversal_time(self):
        assert PAPER_SWITCH.traversal_time(3) == pytest.approx(30e-6)
        with pytest.raises(ConfigurationError):
            PAPER_SWITCH.traversal_time(-1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SwitchFabric(ports=1, latency_s=1e-6)
        with pytest.raises(ConfigurationError):
            SwitchFabric(ports=8, latency_s=-1e-6)

    def test_str(self):
        assert "24-port" in str(PAPER_SWITCH)


class TestNonBlockingModel:
    def test_equation_11_service_time(self):
        """T = α + (2d−1)·α_sw + M·β with d from Eq. 12."""
        model = NonBlockingNetworkModel(GIGABIT_ETHERNET, PAPER_SWITCH, attached_nodes=256)
        assert model.stages == 2
        expected = 80e-6 + 3 * 10e-6 + 1024 / 94e6
        assert model.transmission_time(1024) == pytest.approx(expected)
        assert model.service_time(1024) == pytest.approx(expected)

    def test_zero_blocking_time(self):
        model = NonBlockingNetworkModel(FAST_ETHERNET, PAPER_SWITCH, attached_nodes=64)
        assert model.blocking_time(1024) == 0.0
        assert model.network_latency(1024) == model.transmission_time(1024)
        assert model.has_full_bisection

    def test_single_stage_small_network(self):
        model = NonBlockingNetworkModel(FAST_ETHERNET, PAPER_SWITCH, attached_nodes=16)
        assert model.stages == 1
        expected = 50e-6 + 1 * 10e-6 + 512 / 10.5e6
        assert model.service_time(512) == pytest.approx(expected)

    def test_service_rate_is_reciprocal(self):
        model = NonBlockingNetworkModel(FAST_ETHERNET, PAPER_SWITCH, attached_nodes=16)
        assert model.service_rate(512) == pytest.approx(1.0 / model.service_time(512))

    def test_message_size_validation(self):
        model = NonBlockingNetworkModel(FAST_ETHERNET, PAPER_SWITCH, attached_nodes=16)
        with pytest.raises(ConfigurationError):
            model.transmission_time(-5.0)
        with pytest.raises(ConfigurationError):
            model.blocking_time(-5.0)


class TestBlockingModel:
    def test_equation_21_service_time(self):
        """T = α + ((k+1)/3)·α_sw + (N/2)·M·β for N = 256, Pr = 24 (k = 11)."""
        model = BlockingNetworkModel(FAST_ETHERNET, PAPER_SWITCH, attached_nodes=256)
        assert model.num_switches == 11
        expected = 50e-6 + 4.0 * 10e-6 + 128 * 1024 / 10.5e6
        assert model.service_time(1024) == pytest.approx(expected)

    def test_equation_19_and_20_split(self):
        model = BlockingNetworkModel(FAST_ETHERNET, PAPER_SWITCH, attached_nodes=256)
        # Eq. (19): transmission without contention.
        assert model.transmission_time(1024) == pytest.approx(
            50e-6 + 4.0 * 10e-6 + 1024 / 10.5e6
        )
        # Eq. (20): blocking time (N/2 − 1)·M·β.
        assert model.blocking_time(1024) == pytest.approx(127 * 1024 / 10.5e6)
        # Their sum equals the total network latency.
        assert model.network_latency(1024) == pytest.approx(
            model.transmission_time(1024) + model.blocking_time(1024)
        )

    def test_no_full_bisection(self):
        assert not BlockingNetworkModel(FAST_ETHERNET, PAPER_SWITCH, 256).has_full_bisection

    def test_tiny_network_no_blocking(self):
        model = BlockingNetworkModel(FAST_ETHERNET, PAPER_SWITCH, attached_nodes=2)
        assert model.blocking_time(1024) == 0.0

    def test_blocking_slower_than_nonblocking(self):
        blocking = BlockingNetworkModel(FAST_ETHERNET, PAPER_SWITCH, 256)
        nonblocking = NonBlockingNetworkModel(FAST_ETHERNET, PAPER_SWITCH, 256)
        assert blocking.service_time(1024) > nonblocking.service_time(1024)


class TestFactory:
    def test_build_by_name(self):
        nb = build_network_model("non-blocking", FAST_ETHERNET, PAPER_SWITCH, 16)
        assert isinstance(nb, NonBlockingNetworkModel)
        b = build_network_model("blocking", FAST_ETHERNET, PAPER_SWITCH, 16)
        assert isinstance(b, BlockingNetworkModel)

    def test_aliases(self):
        assert isinstance(
            build_network_model("fat-tree", FAST_ETHERNET, PAPER_SWITCH, 16),
            NonBlockingNetworkModel,
        )
        assert isinstance(
            build_network_model("linear_array", FAST_ETHERNET, PAPER_SWITCH, 16),
            BlockingNetworkModel,
        )

    def test_unknown_architecture(self):
        with pytest.raises(ConfigurationError):
            build_network_model("quantum", FAST_ETHERNET, PAPER_SWITCH, 16)

    def test_attached_nodes_validation(self):
        with pytest.raises(ConfigurationError):
            build_network_model("blocking", FAST_ETHERNET, PAPER_SWITCH, 0)


class TestHeterogeneousMatrix:
    def test_homogeneous_construction(self):
        matrix = HeterogeneousLinkMatrix.homogeneous(4, FAST_ETHERNET)
        assert matrix.size == 4
        assert matrix.transmission_time(0, 1, 1024) == pytest.approx(
            FAST_ETHERNET.transmission_time(1024)
        )

    def test_from_node_technologies_slowest_dominates(self):
        matrix = HeterogeneousLinkMatrix.from_node_technologies(
            [GIGABIT_ETHERNET, FAST_ETHERNET]
        )
        # The GE-FE pair is limited by FE's bandwidth and GE's latency.
        t = matrix.transmission_time(0, 1, 1024)
        assert t == pytest.approx(max(GIGABIT_ETHERNET.alpha, FAST_ETHERNET.alpha)
                                  + 1024 * max(GIGABIT_ETHERNET.beta, FAST_ETHERNET.beta))

    def test_mean_offdiagonal(self):
        matrix = HeterogeneousLinkMatrix.homogeneous(3, FAST_ETHERNET)
        assert matrix.mean_offdiagonal_transmission_time(512) == pytest.approx(
            FAST_ETHERNET.transmission_time(512)
        )

    def test_self_messages_cost_nothing(self):
        # Regression: the constructors zeroed diagonal alpha but left the
        # technology beta, so a self-addressed message still cost M*beta.
        for matrix in (
            HeterogeneousLinkMatrix.homogeneous(3, FAST_ETHERNET),
            HeterogeneousLinkMatrix.from_node_technologies(
                [GIGABIT_ETHERNET, FAST_ETHERNET, FAST_ETHERNET]
            ),
        ):
            for node in range(matrix.size):
                assert matrix.transmission_time(node, node, 4096) == 0.0

    def test_diagonal_beta_tolerated_off_diagonal_still_validated(self):
        import numpy as np

        # Zero on the diagonal is the constructors' own convention ...
        beta = np.full((2, 2), FAST_ETHERNET.beta)
        np.fill_diagonal(beta, 0.0)
        HeterogeneousLinkMatrix(np.zeros((2, 2)), beta)
        # ... but a zero off-diagonal beta is still a configuration error.
        bad = np.full((2, 2), FAST_ETHERNET.beta)
        bad[0, 1] = 0.0
        with pytest.raises(ConfigurationError):
            HeterogeneousLinkMatrix(np.zeros((2, 2)), bad)

    def test_index_validation(self):
        matrix = HeterogeneousLinkMatrix.homogeneous(2, FAST_ETHERNET)
        with pytest.raises(ConfigurationError):
            matrix.transmission_time(0, 5, 100)
        with pytest.raises(ConfigurationError):
            matrix.transmission_time(0, 1, -1)

    def test_shape_validation(self):
        import numpy as np

        with pytest.raises(ConfigurationError):
            HeterogeneousLinkMatrix(np.zeros((2, 3)), np.ones((2, 3)))
        with pytest.raises(ConfigurationError):
            HeterogeneousLinkMatrix(np.zeros((2, 2)), np.zeros((2, 2)))  # beta must be > 0
