"""Tests for the process-pool sweep engine and its deterministic seeding."""

from __future__ import annotations

import time

import pytest

from repro.errors import WorkerError
from repro.parallel import SweepEngine, SweepTask, resolve_jobs, spawn_seeds
from repro.simulation.runner import replication_configs, run_replications
from repro.simulation.simulator import SimulationConfig


# Module-level helpers so they pickle into pool workers.

def _square(x):
    return x * x


def _sleepy_identity(pair):
    index, delay = pair
    time.sleep(delay)
    return index


def _explode(x):
    raise ValueError(f"task payload {x} is cursed")


def _kill_worker(_x):
    # Simulate a worker crash (segfault/OOM): die without reporting back.
    import os

    os._exit(1)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(0, 5) == spawn_seeds(0, 5)

    def test_distinct_within_and_across_masters(self):
        a = spawn_seeds(7, 50)
        b = spawn_seeds(8, 50)
        assert len(set(a)) == 50
        assert not set(a) & set(b), "adjacent master seeds must not share child seeds"

    def test_prefix_stable(self):
        assert spawn_seeds(3, 2) == spawn_seeds(3, 4)[:2]

    def test_zero_count(self):
        assert spawn_seeds(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_all_cores(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestSweepEngineSerial:
    def test_map_in_order(self):
        assert SweepEngine(jobs=1).map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_jobs_1_runs_in_process(self):
        # Lambdas cannot be pickled, so succeeding proves no pool was used.
        assert SweepEngine(jobs=1).map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_empty_tasks(self):
        assert SweepEngine(jobs=1).run([]) == []
        assert SweepEngine(jobs=4).run([]) == []

    def test_single_task_stays_in_process_even_with_jobs(self):
        assert SweepEngine(jobs=4).map(lambda x: -x, [5]) == [-5]

    def test_failure_keeps_original_exception_type(self):
        # The engine must not change the exception contract of the serial
        # loops it replaced: callers still catch the original type.
        with pytest.raises(ValueError, match="cursed") as excinfo:
            SweepEngine(jobs=1).run(
                [SweepTask(fn=_square, args=(2,)),
                 SweepTask(fn=_explode, args=(9,), label="the-bad-one")]
            )
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("task #1" in note and "the-bad-one" in note for note in notes)

    def test_progress_callback(self):
        seen = []
        engine = SweepEngine(jobs=1, progress=lambda done, total, label: seen.append((done, total)))
        engine.map(_square, [1, 2, 3])
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestSweepEnginePool:
    def test_results_in_task_order_despite_completion_order(self):
        # The first task sleeps longest, so completion order is reversed;
        # results must still come back in submission order.
        items = [(0, 0.3), (1, 0.15), (2, 0.0)]
        assert SweepEngine(jobs=3).map(_sleepy_identity, items) == [0, 1, 2]

    def test_pool_matches_serial(self):
        items = list(range(20))
        assert SweepEngine(jobs=4).map(_square, items) == SweepEngine(jobs=1).map(_square, items)

    def test_worker_failure_propagates_original_type(self):
        tasks = [SweepTask(fn=_square, args=(i,)) for i in range(4)]
        tasks.append(SweepTask(fn=_explode, args=(4,), label="boom"))
        with pytest.raises(ValueError, match="cursed") as excinfo:
            SweepEngine(jobs=2).run(tasks)
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("task #4" in note and "boom" in note for note in notes)

    def test_dead_worker_raises_worker_error(self):
        # A worker that dies without reporting back is an infrastructure
        # failure, not a task exception: that is what WorkerError marks.
        with pytest.raises(WorkerError) as excinfo:
            SweepEngine(jobs=2).run(
                [SweepTask(fn=_kill_worker, args=(0,), label="crasher"),
                 SweepTask(fn=_square, args=(3,))]
            )
        assert excinfo.value.original is excinfo.value.__cause__

    def test_progress_reports_every_task(self):
        seen = []
        engine = SweepEngine(jobs=2, progress=lambda done, total, label: seen.append(done))
        engine.map(_square, list(range(6)))
        assert sorted(seen) == [1, 2, 3, 4, 5, 6]


class TestReplicationParallelism:
    @pytest.fixture
    def config(self):
        return SimulationConfig(num_messages=300, seed=11)

    def test_replication_configs_use_spawned_seeds(self, config):
        configs = replication_configs(config, 3)
        assert [c.seed for c in configs] == spawn_seeds(11, 3)

    def test_serial_and_parallel_bit_identical(self, small_case1_system, config):
        serial = run_replications(small_case1_system, config, replications=3, jobs=1)
        pooled = run_replications(small_case1_system, config, replications=3, jobs=3)
        assert serial.per_replication == pooled.per_replication
        assert serial.mean_latency_s == pooled.mean_latency_s
        assert serial.latency_interval == pooled.latency_interval

    def test_explicit_engine_override(self, small_case1_system, config):
        engine = SweepEngine(jobs=1)
        result = run_replications(small_case1_system, config, replications=2, engine=engine)
        assert result.replications == 2


@pytest.mark.slow
class TestFigureSweepParallelism:
    def test_figure_sweep_bit_identical_and_seed_decorrelated(self):
        from repro.experiments.figures import run_figure

        kwargs = dict(
            include_simulation=True,
            cluster_counts=[2, 4],
            message_sizes=[512, 1024],
            simulation_messages=400,
            replications=2,
        )
        serial = run_figure(4, jobs=1, **kwargs)
        pooled = run_figure(4, jobs=2, **kwargs)
        assert serial.points == pooled.points
        # Distinct sweep points must not reuse each other's latency stream:
        # identical values would indicate shared seeds.
        latencies = [p.simulation_latency_ms for p in serial.points]
        assert len(set(latencies)) == len(latencies)
