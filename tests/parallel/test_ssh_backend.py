"""Tests for the self-provisioning SSH execution backend.

Real multi-host SSH is not available on the CI box, so the backend runs
against a *stub* ``ssh``: a shell script that drops the options and host
argument and executes the remote command locally.  Everything else — the
coordinator, the inbound worker handshake, requeue-on-loss, teardown — is
exactly the production code path.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

import _ssh_test_helpers

from repro.cli import build_engine, build_parser
from repro.parallel import (
    SSHBackend,
    SweepEngine,
    SweepTask,
    ssh_backend_from_spec,
)
from repro.simulation.runner import run_replications
from repro.simulation.simulator import SimulationConfig

#: Generous worker-join budget for the 1-CPU CI box (workers import numpy).
ACCEPT_TIMEOUT = 60.0

_TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
_SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(_TESTS_DIR)), "src")

STUB_SSH = """#!/bin/sh
# stub ssh: record our pid, drop options and the host argument, run the
# "remote" command locally.
echo $$ >> {pid_log}
while [ "$#" -gt 0 ]; do
  case "$1" in
    -o) shift 2 ;;
    -*) shift ;;
    *) break ;;
  esac
done
host="$1"; shift
exec sh -c "$*"
"""


@pytest.fixture
def stub_ssh(tmp_path):
    """Path of a stub ssh executable (and the pid log it appends to)."""
    pid_log = tmp_path / "ssh_pids.log"
    script = tmp_path / "ssh"
    script.write_text(STUB_SSH.format(pid_log=pid_log))
    script.chmod(0o755)
    return str(script), str(pid_log)


def _ssh_backend(stub, hosts=("localhost", "localhost"), **kwargs):
    script, _pid_log = stub
    kwargs.setdefault("remote_pythonpath", os.pathsep.join((_SRC_DIR, _TESTS_DIR)))
    return SSHBackend(
        hosts=list(hosts),
        ssh_command=[script],
        remote_python=sys.executable,
        accept_timeout=ACCEPT_TIMEOUT,
        **kwargs,
    )


class TestSSHBackendConstruction:
    def test_spec_parses_host_list(self):
        backend = ssh_backend_from_spec("hostA, user@hostB")
        assert backend.hosts == ["hostA", "user@hostB"]
        assert backend.spawn_workers == 2

    def test_spec_rejects_empty_entries(self):
        for spec in (None, "", "hostA,,hostB", "hostA,", ",hostA"):
            with pytest.raises(ValueError):
                ssh_backend_from_spec(spec)

    def test_spec_rejects_socket_syntax(self):
        with pytest.raises(ValueError, match="socket-backend syntax"):
            ssh_backend_from_spec("hostA:7777")

    def test_ipv6_literals_are_valid_hosts(self):
        # '::1' is in _LOCAL_HOSTS, so it must be constructible: only the
        # single-colon HOST:PORT shape is socket-backend syntax.
        backend = SSHBackend(hosts=["::1", "user@fe80::2"])
        assert backend.hosts == ["::1", "user@fe80::2"]
        assert SSHBackend(hosts=["::1"]).bind == ("127.0.0.1", 0)

    def test_spec_rejects_worker_counts(self):
        # '--workers 4' is socket-backend spawn-count syntax; as an SSH
        # "hostname" it would only fail later with a confusing dial error.
        for spec in ("4", "hostA,4"):
            with pytest.raises(ValueError, match="worker count"):
                ssh_backend_from_spec(spec)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SSHBackend(hosts=[])
        with pytest.raises(ValueError):
            SSHBackend(hosts=["ok host"])
        with pytest.raises(ValueError):
            SSHBackend(hosts=["ok"], ssh_command=[])

    def test_all_local_hosts_bind_loopback_only(self):
        # No remote worker needs to dial in, so the pickle-speaking
        # listener must not be exposed on every interface.
        assert SSHBackend(hosts=["localhost", "127.0.0.1"]).bind == ("127.0.0.1", 0)
        assert SSHBackend(hosts=["far.example.org"]).bind == ("0.0.0.0", 0)
        explicit = SSHBackend(hosts=["localhost"], bind=("10.0.0.5", 0))
        assert explicit.bind == ("10.0.0.5", 0)

    def test_advertised_host_defaults(self):
        local = SSHBackend(hosts=["localhost", "user@127.0.0.1"])
        assert local.advertised_host("0.0.0.0") == "127.0.0.1"
        pinned = SSHBackend(hosts=["far.example.org"], advertise_host="10.0.0.5")
        assert pinned.advertised_host("0.0.0.0") == "10.0.0.5"

    def test_launch_commands_shape(self):
        backend = SSHBackend(hosts=["user@hostA"], remote_pythonpath="/opt/repro/src")
        (argv, env), = backend.worker_launch_commands("coord.example", 7777)
        assert argv[:3] == ["ssh", "-o", "BatchMode=yes"]
        assert argv[-2] == "user@hostA"
        assert "repro.parallel.worker" in argv[-1]
        assert "--connect coord.example:7777" in argv[-1]
        assert "PYTHONPATH=/opt/repro/src" in argv[-1]
        assert env is None  # ssh client inherits the caller's environment


class TestSSHExecution:
    def test_results_match_serial(self, stub_ssh):
        engine = SweepEngine(backend=_ssh_backend(stub_ssh))
        assert engine.map(abs, [-3, -1, -4, -1, -5]) == [3, 1, 4, 1, 5]

    def test_replication_sweep_bit_identical_to_serial(self, stub_ssh, small_case1_system):
        config = SimulationConfig(num_messages=200, seed=11)
        serial = run_replications(small_case1_system, config, replications=2, jobs=1)
        sshed = run_replications(
            small_case1_system, config, replications=2,
            engine=SweepEngine(backend=_ssh_backend(stub_ssh)),
        )
        assert serial.per_replication == sshed.per_replication
        assert serial.mean_latency_s == sshed.mean_latency_s

    def test_sweep_survives_loss_of_one_worker(self, stub_ssh, tmp_path):
        # The first worker to claim the poisoned task hard-exits (host
        # loss); the task must be requeued onto the surviving worker and
        # the sweep still complete with full results.
        sentinel = str(tmp_path / "crash.sentinel")
        engine = SweepEngine(backend=_ssh_backend(stub_ssh))
        tasks = [SweepTask(fn=abs, args=(-i,), label=f"abs[{i}]") for i in range(4)]
        tasks.insert(2, SweepTask(
            fn=_ssh_test_helpers.exit_once, args=(7, sentinel), label="poison"
        ))
        results = engine.run(tasks)
        assert results == [0, 1, -7, 2, 3]
        assert os.path.exists(sentinel)

    def test_teardown_leaves_no_workers_behind(self, stub_ssh):
        script, pid_log = stub_ssh
        engine = SweepEngine(backend=_ssh_backend(stub_ssh))
        assert engine.map(abs, [-1, -2]) == [1, 2]
        pids = [int(line) for line in open(pid_log).read().split()]
        assert len(pids) == 2  # one ssh per host
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = [pid for pid in pids if _pid_alive(pid)]
            if not alive:
                return
            time.sleep(0.1)
        pytest.fail(f"ssh-launched workers still alive after teardown: {alive}")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class TestSSHCli:
    def test_build_engine_maps_ssh_spec(self, monkeypatch, stub_ssh):
        script, _pid_log = stub_ssh
        monkeypatch.setenv("REPRO_SSH_COMMAND", script)
        monkeypatch.setenv("REPRO_SSH_PYTHON", sys.executable)
        monkeypatch.setenv("REPRO_SSH_PYTHONPATH", _SRC_DIR)
        args = build_parser().parse_args(
            ["ratio", "--backend", "ssh", "--workers", "localhost,localhost"]
        )
        engine = build_engine(args)
        assert isinstance(engine.backend, SSHBackend)
        assert engine.backend.hosts == ["localhost", "localhost"]
        assert engine.backend.ssh_command == [script]
        assert engine.backend.remote_python == sys.executable
        assert engine.backend.remote_pythonpath == _SRC_DIR

    def test_ssh_backend_requires_workers(self):
        args = build_parser().parse_args(["ratio", "--backend", "ssh"])
        with pytest.raises(SystemExit):
            build_engine(args)

    def test_bad_ssh_spec_is_a_clean_cli_error(self):
        args = build_parser().parse_args(
            ["ratio", "--backend", "ssh", "--workers", "hostA,,hostB"]
        )
        with pytest.raises(SystemExit):
            build_engine(args)

    def test_bare_ssh_name_needs_hosts(self):
        engine = SweepEngine(backend="ssh")
        with pytest.raises(ValueError, match="needs a host list"):
            engine.map(abs, [-1, -2])
