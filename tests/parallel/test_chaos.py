"""Tests for the deterministic chaos harness (`repro.testing.chaos`).

The integration tests assert the harness's core contract: a fixed-seed
chaos schedule — worker kills, dropped/truncated connections, silent hangs
— leaves every backend's results **bit-identical** to the undisturbed
serial run, or fails with a clean, typed error.
"""

from __future__ import annotations

import math
import socket

import pytest

from repro.errors import ConfigurationError, WorkerError
from repro.parallel import PersistentPoolBackend, SerialBackend, SocketBackend, SweepEngine
from repro.testing import chaos

#: Generous handshake budget for the 1-CPU CI box (workers import numpy).
ACCEPT_TIMEOUT = 60.0

ITEMS = [4.0, 9.0, 16.0, 25.0, 36.0, 49.0, 64.0, 81.0]


@pytest.fixture(autouse=True)
def _clean_chaos(monkeypatch):
    """Isolate every test from ambient REPRO_CHAOS and cached controllers."""
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    chaos.reset()
    yield
    chaos.reset()


# ---------------------------------------------------------------- parsing


class TestParseChaosSpec:
    def test_defaults(self):
        spec = chaos.parse_chaos_spec("")
        assert spec == chaos.ChaosSpec()
        assert spec.scope == "worker" and spec.seed == 0

    def test_full_schedule(self):
        spec = chaos.parse_chaos_spec(
            "seed=7, scope=all, kill-after=2, kill-limit=1, drop-send=0.25,"
            " truncate-send=0.1, truncate-limit=3, delay-send-ms=5, state=/tmp/x"
        )
        assert spec.seed == 7
        assert spec.scope == "all"
        assert spec.kill_after == 2 and spec.kill_limit == 1
        assert spec.drop_send == 0.25
        assert spec.truncate_send == 0.1 and spec.truncate_limit == 3
        assert spec.delay_send_ms == 5.0
        assert spec.state_dir == "/tmp/x"

    def test_empty_items_are_skipped(self):
        assert chaos.parse_chaos_spec("seed=3,,") == chaos.ChaosSpec(seed=3)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos key"):
            chaos.parse_chaos_spec("kill=1")

    def test_missing_equals_rejected(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            chaos.parse_chaos_spec("seed")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid value"):
            chaos.parse_chaos_spec("kill-after=soon")

    @pytest.mark.parametrize(
        "text",
        [
            "scope=everyone",
            "kill-after=0",
            "drop-limit=0",
            "drop-send=1.5",
            "truncate-send=-0.1",
            "delay-send-ms=-1",
        ],
    )
    def test_spec_validation(self, text):
        with pytest.raises(ConfigurationError):
            chaos.parse_chaos_spec(text)

    def test_describe_lists_active_knobs(self):
        text = chaos.describe(chaos.ChaosSpec(seed=7, kill_after=1, drop_send=0.5))
        assert "seed=7" in text and "kill_after=1" in text and "drop_send=0.5" in text
        assert "truncate" not in text


# ---------------------------------------------------------------- activation


class TestActivation:
    def test_off_without_env(self):
        assert chaos.controller() is None

    def test_default_scope_skips_coordinator(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "seed=1,kill-after=1")
        chaos.set_role("coordinator")
        assert chaos.controller() is None

    def test_worker_role_gets_controller(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "seed=1,kill-after=1")
        chaos.set_role("worker")
        injector = chaos.controller()
        assert injector is not None and injector.role == "worker"
        assert chaos.controller() is injector  # cached

    def test_scope_all_reaches_coordinator(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "seed=1,scope=all,delay-send-ms=1")
        chaos.set_role("coordinator")
        assert chaos.controller() is not None

    def test_env_change_reparses(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "seed=1")
        chaos.set_role("worker")
        first = chaos.controller()
        monkeypatch.setenv(chaos.ENV_VAR, "seed=2")
        second = chaos.controller()
        assert second is not first and second.spec.seed == 2

    def test_set_role_validates(self):
        with pytest.raises(ConfigurationError):
            chaos.set_role("bystander")

    def test_main_process_defaults_to_coordinator(self):
        assert chaos.current_role() == "coordinator"


# ---------------------------------------------------------------- controller


class TestController:
    def test_kill_fires_after_threshold_once(self):
        spec = chaos.ChaosSpec(kill_after=2, kill_limit=1)
        injector = chaos.ChaosController(spec, "worker")
        assert injector.after_task() is None
        assert injector.after_task() == "kill"
        assert injector.after_task() is None  # per-process cap exhausted

    def test_hang_fires_after_threshold(self):
        injector = chaos.ChaosController(chaos.ChaosSpec(hang_after=1), "worker")
        assert injector.after_task() == "hang"

    def test_kill_takes_precedence_over_hang(self):
        spec = chaos.ChaosSpec(kill_after=1, hang_after=1)
        assert chaos.ChaosController(spec, "worker").after_task() == "kill"

    def test_state_dir_caps_are_fleet_global(self, tmp_path):
        spec = chaos.ChaosSpec(kill_after=1, kill_limit=2, state_dir=str(tmp_path))
        fleet = [chaos.ChaosController(spec, "worker") for _ in range(4)]
        fired = [injector.after_task() for injector in fleet]
        assert fired.count("kill") == 2
        assert len(list(tmp_path.glob("kill-*.token"))) == 2

    def test_drop_closes_and_raises(self):
        spec = chaos.ChaosSpec(drop_send=1.0, drop_limit=1)
        injector = chaos.ChaosController(spec, "worker")
        a, b = socket.socketpair()
        try:
            with pytest.raises(ConnectionError, match="dropped"):
                injector.before_send(a, b"frame")
            assert a.fileno() == -1  # closed
            injector.before_send(b, b"frame")  # limit spent: passes through
        finally:
            for sock in (a, b):
                if sock.fileno() != -1:
                    sock.close()

    def test_truncate_sends_half_then_raises(self):
        spec = chaos.ChaosSpec(truncate_send=1.0, truncate_limit=1)
        injector = chaos.ChaosController(spec, "worker")
        a, b = socket.socketpair()
        try:
            payload = b"0123456789abcdef"
            with pytest.raises(ConnectionError, match="truncated"):
                injector.before_send(a, payload)
            assert b.recv(1024) == payload[:8]
            assert b.recv(1024) == b""  # peer closed after the torn write
        finally:
            b.close()

    def test_schedule_is_seed_deterministic(self):
        spec = chaos.ChaosSpec(seed=3, drop_send=0.5)
        a = chaos.ChaosController(spec, "worker")
        b = chaos.ChaosController(spec, "worker")
        assert [a._rng.random() for _ in range(32)] == [b._rng.random() for _ in range(32)]


# ------------------------------------------------------------- integration


def _socket_engine(**kwargs) -> SweepEngine:
    backend = SocketBackend(spawn_workers=2, accept_timeout=ACCEPT_TIMEOUT, **kwargs)
    return SweepEngine(backend=backend)


class TestChaosIntegration:
    """Fixed-seed chaos runs are bit-identical to the undisturbed serial run."""

    @pytest.fixture
    def baseline(self):
        return SweepEngine(backend=SerialBackend()).map(math.sqrt, ITEMS)

    def test_worker_kill_is_bit_identical(self, monkeypatch, tmp_path, baseline):
        monkeypatch.setenv(
            chaos.ENV_VAR, f"seed=7,kill-after=1,kill-limit=1,state={tmp_path}"
        )
        assert _socket_engine().map(math.sqrt, ITEMS) == baseline
        assert len(list(tmp_path.glob("kill-*.token"))) == 1

    def test_dropped_connection_is_bit_identical(self, monkeypatch, tmp_path, baseline):
        monkeypatch.setenv(
            chaos.ENV_VAR, f"seed=7,drop-send=1.0,drop-limit=1,state={tmp_path}"
        )
        assert _socket_engine().map(math.sqrt, ITEMS) == baseline

    def test_truncated_frame_is_bit_identical(self, monkeypatch, tmp_path, baseline):
        monkeypatch.setenv(
            chaos.ENV_VAR, f"seed=7,truncate-send=1.0,truncate-limit=1,state={tmp_path}"
        )
        assert _socket_engine().map(math.sqrt, ITEMS) == baseline

    def test_hung_worker_is_reaped_and_bit_identical(self, monkeypatch, tmp_path, baseline):
        monkeypatch.setenv(
            chaos.ENV_VAR, f"seed=7,hang-after=1,hang-limit=1,state={tmp_path}"
        )
        engine = _socket_engine(heartbeat_interval=0.2, dead_peer_timeout=1.5)
        assert engine.map(math.sqrt, ITEMS) == baseline

    def test_pool_kill_fails_clean_then_recovers(self, monkeypatch, tmp_path, baseline):
        monkeypatch.setenv(
            chaos.ENV_VAR, f"seed=7,kill-after=1,kill-limit=1,state={tmp_path}"
        )
        with PersistentPoolBackend(jobs=2) as backend:
            engine = SweepEngine(backend=backend)
            with pytest.raises(WorkerError):
                engine.map(math.sqrt, ITEMS)
            # The kill token is spent: the rebuilt pool finishes undisturbed.
            assert engine.map(math.sqrt, ITEMS) == baseline
            assert backend.pools_created == 2
