"""Tests for the warm-pool backend behind `repro serve`.

`PersistentPoolBackend` must reuse one worker pool across `execute` calls
(the whole point of its existence), survive task failures without
poisoning the pool, and release workers cleanly on `close`.
"""

from __future__ import annotations

import pytest

from repro.parallel import PersistentPoolBackend, SerialBackend, SweepEngine, SweepTask


def _square(x):
    return x * x


def _explode(x):
    raise ValueError(f"task payload {x} is cursed")


def _tasks(n, fn=_square):
    return [SweepTask(fn=fn, args=(i,)) for i in range(n)]


class TestPoolReuse:
    def test_one_pool_across_many_executes(self):
        with PersistentPoolBackend(jobs=1) as backend:
            assert backend.pools_created == 0  # lazy: no workers before first use
            for _ in range(3):
                outcomes = list(backend.execute(_tasks(4)))
                assert {o.index: o.value for o in outcomes} == {i: i * i for i in range(4)}
            assert backend.pools_created == 1

    def test_close_is_idempotent_and_pool_restarts_after(self):
        backend = PersistentPoolBackend(jobs=1)
        assert [o.value for o in backend.execute(_tasks(2))] == [0, 1]
        backend.close()
        backend.close()
        # A later run transparently boots a fresh pool.
        assert [o.value for o in backend.execute(_tasks(2))] == [0, 1]
        assert backend.pools_created == 2
        backend.close()

    def test_task_error_does_not_poison_the_pool(self):
        with PersistentPoolBackend(jobs=1) as backend:
            outcomes = list(backend.execute(_tasks(1, fn=_explode)))
            assert isinstance(outcomes[0].error, ValueError)
            assert not outcomes[0].infrastructure
            # The same warm pool serves the next (healthy) run.
            assert [o.value for o in backend.execute(_tasks(3))] == [0, 1, 4]
            assert backend.pools_created == 1

    def test_unpicklable_task_rejected_before_reaching_the_pool(self):
        with PersistentPoolBackend(jobs=1) as backend:
            bad = [SweepTask(fn=lambda x: x, args=(1,))]  # repro: noqa REP201
            outcomes = list(backend.execute(bad))
            assert len(outcomes) == 1
            assert outcomes[0].error is not None
            assert backend.pools_created == 0  # never even booted workers

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            PersistentPoolBackend(jobs=0)


class TestEngineIntegration:
    def test_engine_results_bit_identical_to_serial(self):
        tasks = _tasks(5)
        serial = SweepEngine(backend=SerialBackend()).run(tasks)
        with PersistentPoolBackend(jobs=2) as backend:
            warm = SweepEngine(backend=backend).run(tasks)
        assert warm == serial
