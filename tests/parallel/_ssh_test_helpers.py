"""Task functions shipped to SSH-test workers.

Socket/SSH workers are fresh interpreters, so any task function used with
them must live in an importable module — the SSH backend tests put this
directory on the workers' ``PYTHONPATH`` (via ``remote_pythonpath``) so
these helpers resolve there.
"""

from __future__ import annotations

import os


def exit_once(x, sentinel_path):
    """Hard-kill the first worker that runs this; succeed on the retry.

    The sentinel file makes the crash one-shot: the requeued task lands on
    a surviving worker (or a rejoin) and completes, which is exactly the
    "sweep survives the loss of one worker" scenario.
    """
    if not os.path.exists(sentinel_path):
        with open(sentinel_path, "w", encoding="utf-8") as handle:
            handle.write("crashed once")
        os._exit(3)
    return -x
