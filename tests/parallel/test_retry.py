"""Tests for the shared retry policy (`repro.parallel.retry`)."""

from __future__ import annotations

import pytest

from repro.parallel.retry import DEFAULT_BASE_DELAY, DEFAULT_CAP_DELAY, backoff_delays


class TestBackoffDelays:
    def test_no_retries_is_empty(self):
        assert backoff_delays(0) == []

    def test_delays_are_deterministic(self):
        assert backoff_delays(6, salt=42) == backoff_delays(6, salt=42)

    def test_salt_desynchronises_peers(self):
        assert backoff_delays(6, salt=1) != backoff_delays(6, salt=2)

    def test_jitter_bounds(self):
        for salt in range(20):
            for attempt, delay in enumerate(backoff_delays(8, jitter=0.5, salt=salt)):
                nominal = min(DEFAULT_CAP_DELAY, DEFAULT_BASE_DELAY * 2.0**attempt)
                assert 0.5 * nominal <= delay <= nominal

    def test_zero_jitter_is_pure_capped_doubling(self):
        delays = backoff_delays(6, base=1.0, cap=8.0, jitter=0.0)
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_cap_bounds_every_delay(self):
        assert all(d <= 0.5 for d in backoff_delays(12, base=0.1, cap=0.5))

    def test_nominal_schedule_doubles_until_cap(self):
        nominal = [min(5.0, 0.2 * 2.0**i) for i in range(6)]
        assert nominal[:5] == [0.2, 0.4, 0.8, 1.6, 3.2] and nominal[5] == 5.0

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"attempts": -1}, "non-negative"),
            ({"attempts": 3, "base": 0.0}, "positive"),
            ({"attempts": 3, "base": 1.0, "cap": 0.5}, "cap"),
            ({"attempts": 3, "jitter": 1.0}, "jitter"),
            ({"attempts": 3, "jitter": -0.1}, "jitter"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            backoff_delays(**kwargs)
