"""Tests for the execution-backend layer (serial / pool / socket).

The socket tests spawn real ``python -m repro.parallel.worker`` processes,
which are *fresh* interpreters (not forks), so every task function used with
the socket backend must be importable there: builtins (``abs``), stdlib
callables (``math.sqrt``, ``os._exit``) and :mod:`repro` functions qualify;
helpers defined in this test module do not.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import socket
import subprocess
import sys

import pytest

from repro.cli import build_engine, build_parser
from repro.errors import WorkerError
from repro.parallel import (
    ProcessPoolBackend,
    SerialBackend,
    SocketBackend,
    SweepEngine,
    SweepTask,
    TaskOutcome,
    socket_backend_from_spec,
)
from repro.parallel.protocol import ProtocolError, parse_address, recv_message, send_message
from repro.simulation.runner import run_replications
from repro.simulation.simulator import SimulationConfig

#: Generous handshake budget for the 1-CPU CI box (workers import numpy).
ACCEPT_TIMEOUT = 60.0


def _socket_engine(workers: int = 2, **kwargs) -> SweepEngine:
    backend = SocketBackend(spawn_workers=workers, accept_timeout=ACCEPT_TIMEOUT, **kwargs)
    return SweepEngine(backend=backend)


# Module-level helpers for the serial/pool backends (fork start method).

def _square(x):
    return x * x


def _explode(x):
    raise ValueError(f"task payload {x} is cursed")


class TestProtocol:
    def test_parse_address(self):
        assert parse_address("example.org:7777") == ("example.org", 7777)
        assert parse_address(":5555") == ("127.0.0.1", 5555)
        assert parse_address(":5555", default_host="0.0.0.0") == ("0.0.0.0", 5555)

    def test_parse_address_rejects_garbage(self):
        for bad in ("no-port", "host:", "host:abc", "host:-2", "host:70000"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_message(a, ("task", 3, {"payload": [1.5, None]}))
            assert recv_message(b) == ("task", 3, {"payload": [1.5, None]})
        finally:
            a.close()
            b.close()

    def test_closed_peer_raises_connection_error(self):
        a, b = socket.socketpair()
        a.close()
        with pytest.raises(ConnectionError):
            recv_message(b)
        b.close()

    def test_garbage_frame_raises_protocol_error(self):
        a, b = socket.socketpair()
        try:
            payload = b"this is not a pickle"
            a.sendall(len(payload).to_bytes(8, "big") + payload)
            with pytest.raises(ProtocolError):
                recv_message(b)
        finally:
            a.close()
            b.close()


class TestBackendInterface:
    def test_serial_backend_yields_in_task_order(self):
        tasks = [SweepTask(fn=_square, args=(i,)) for i in range(4)]
        outcomes = list(SerialBackend().execute(tasks))
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        assert all(o.error is None for o in outcomes)

    def test_serial_backend_stops_at_first_error(self):
        tasks = [
            SweepTask(fn=_square, args=(2,)),
            SweepTask(fn=_explode, args=(0,)),
            SweepTask(fn=_square, args=(3,)),
        ]
        outcomes = list(SerialBackend().execute(tasks))
        assert len(outcomes) == 2
        assert isinstance(outcomes[1].error, ValueError)
        assert not outcomes[1].infrastructure

    def test_pool_backend_covers_every_task(self):
        tasks = [SweepTask(fn=_square, args=(i,)) for i in range(6)]
        outcomes = list(ProcessPoolBackend(jobs=2).execute(tasks))
        assert sorted(o.index for o in outcomes) == list(range(6))
        assert {o.index: o.value for o in outcomes} == {i: i * i for i in range(6)}

    def test_pool_backend_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(jobs=0)

    def test_task_outcome_defaults(self):
        outcome = TaskOutcome(index=5, value=42)
        assert outcome.error is None and not outcome.infrastructure


class TestEngineBackendSelection:
    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SweepEngine(backend="carrier-pigeon")

    def test_auto_mode_uses_serial_for_single_task(self):
        # Lambdas cannot be pickled, so succeeding proves no pool was used.
        assert SweepEngine(jobs=4).map(lambda x: -x, [5]) == [-5]

    def test_explicit_serial_backend_instance(self):
        engine = SweepEngine(backend=SerialBackend())
        assert engine.map(lambda x: x + 1, [1, 2]) == [2, 3]  # repro: noqa REP201 -- serial backend

    def test_explicit_pool_name_forces_pool(self):
        # With a forced pool backend even jobs=1 pickles tasks into a
        # worker process, so a lambda must fail...
        with pytest.raises(Exception):
            SweepEngine(jobs=1, backend="pool").map(lambda x: x, [1, 2])
        # ... while a picklable function works.
        assert SweepEngine(jobs=1, backend="pool").map(_square, [1, 2]) == [1, 4]

    def test_unpicklable_pool_task_never_reaches_the_executor(self):
        # Regression: pickling errors used to fire on the executor's
        # queue-feeder thread, which races the manager thread's shutdown
        # bookkeeping on CPython 3.11 — rarely stranding a resolved future
        # in pending_work_items, after which interpreter exit hung forever
        # joining the manager thread.  The backend now rejects the task up
        # front: same original-type error, but no pool (and no worker
        # process) is ever created for the doomed sweep.
        before = {p.pid for p in multiprocessing.active_children()}
        with pytest.raises((pickle.PicklingError, TypeError, AttributeError)):
            SweepEngine(jobs=2, backend="pool").map(lambda x: x, [1, 2])
        spawned = {p.pid for p in multiprocessing.active_children()} - before
        assert not spawned


class TestSocketBackendSpec:
    def test_default_spawns_workers(self):
        backend = socket_backend_from_spec(None, default_workers=3)
        assert backend.spawn_workers == 3 and not backend.worker_addresses

    def test_integer_spec(self):
        backend = socket_backend_from_spec("4")
        assert backend.spawn_workers == 4

    def test_address_list_spec(self):
        backend = socket_backend_from_spec("alpha:7777, beta:8888")
        assert backend.spawn_workers == 0
        assert backend.worker_addresses == [("alpha", 7777), ("beta", 8888)]

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            socket_backend_from_spec("0")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            socket_backend_from_spec("not-an-address")

    def test_empty_entries_rejected(self):
        # Silently dropping blanks used to hide typos until the dial path
        # failed much later; now every blank entry is a clear ValueError.
        for spec in ("a:1,,b:2", "a:1,", ",a:1", " , "):
            with pytest.raises(ValueError, match="empty entry"):
                socket_backend_from_spec(spec)

    def test_malformed_entry_names_the_offender(self):
        with pytest.raises(ValueError, match="'b'"):
            socket_backend_from_spec("a:1,b")

    def test_port_zero_rejected(self):
        # Port 0 parses (it is valid for *binding*) but can never be
        # dialled; reject it here instead of deep inside _dial.
        with pytest.raises(ValueError, match="port 0"):
            socket_backend_from_spec("host:0")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SocketBackend(spawn_workers=0)
        with pytest.raises(ValueError):
            SocketBackend(max_task_attempts=0)

    def test_robustness_knob_validation(self):
        with pytest.raises(ValueError, match="connect_timeout"):
            SocketBackend(spawn_workers=1, connect_timeout=0.0)
        with pytest.raises(ValueError, match="dial_attempts"):
            SocketBackend(spawn_workers=1, dial_attempts=0)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            SocketBackend(spawn_workers=1, heartbeat_interval=-1.0)
        with pytest.raises(ValueError, match="dead_peer_timeout"):
            SocketBackend(spawn_workers=1, dead_peer_timeout=0.0)

    def test_effective_dead_peer_timeout(self):
        # Explicit setting wins; else 4x the heartbeat with a 20 s floor;
        # disabling heartbeats disables dead-peer detection entirely.
        assert SocketBackend(
            spawn_workers=1, dead_peer_timeout=7.0
        ).effective_dead_peer_timeout == 7.0
        assert SocketBackend(
            spawn_workers=1, heartbeat_interval=10.0
        ).effective_dead_peer_timeout == 40.0
        assert SocketBackend(
            spawn_workers=1, heartbeat_interval=1.0
        ).effective_dead_peer_timeout == 20.0
        assert SocketBackend(
            spawn_workers=1, heartbeat_interval=0.0
        ).effective_dead_peer_timeout == 0.0

    def test_launch_commands_carry_heartbeat_interval(self):
        backend = SocketBackend(spawn_workers=2, heartbeat_interval=2.5)
        commands = backend.worker_launch_commands("127.0.0.1", 7777)
        assert len(commands) == 2
        for argv, _env in commands:
            flag = argv.index("--heartbeat-interval")
            assert argv[flag + 1] == "2.5"


class TestCliBackendSelection:
    def test_backend_and_workers_flags_parse(self):
        args = build_parser().parse_args(
            ["figure", "6", "--simulate", "--backend", "socket", "--workers", "2"]
        )
        assert args.backend == "socket" and args.workers == "2"

    def test_backend_flags_on_every_sweep_command(self):
        parser = build_parser()
        for argv in (
            ["ratio", "--backend", "serial"],
            ["validate", "--backend", "pool", "--jobs", "2"],
            ["ablation", "message-size", "--backend", "serial"],
            ["report", "--backend", "serial"],
        ):
            assert parser.parse_args(argv).backend == argv[argv.index("--backend") + 1]

    def test_build_engine_maps_socket_spec(self):
        args = build_parser().parse_args(
            ["ratio", "--backend", "socket", "--workers", "host:9999"]
        )
        engine = build_engine(args)
        assert isinstance(engine.backend, SocketBackend)
        assert engine.backend.worker_addresses == [("host", 9999)]

    def test_build_engine_defaults_socket_workers_to_jobs(self):
        args = build_parser().parse_args(["ratio", "--backend", "socket", "--jobs", "3"])
        engine = build_engine(args)
        assert isinstance(engine.backend, SocketBackend)
        assert engine.backend.spawn_workers == 3

    def test_build_engine_socket_jobs_zero_means_all_cores(self):
        args = build_parser().parse_args(["ratio", "--backend", "socket", "--jobs", "0"])
        engine = build_engine(args)
        assert engine.backend.spawn_workers == (os.cpu_count() or 1)

    def test_workers_without_socket_backend_rejected(self):
        args = build_parser().parse_args(["ratio", "--workers", "2"])
        with pytest.raises(SystemExit):
            build_engine(args)

    def test_plain_backend_names_pass_through(self):
        args = build_parser().parse_args(["ratio", "--backend", "pool", "--jobs", "2"])
        engine = build_engine(args)
        assert engine.backend == "pool" and engine.jobs == 2

    def test_closed_form_ablation_accepts_backend_flags(self, capsys):
        # The MVA comparison runs as an ordinary 2-task sweep through the
        # pipeline runner, so backend flags apply to it like to every other
        # ablation (it used to reject them outright).
        from repro.cli import main

        assert main(["ablation", "fixed-point-vs-mva", "--backend", "serial"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["ablation", "fixed-point-vs-mva", "--backend", "pool", "--jobs", "2"]) == 0
        pool_out = capsys.readouterr().out
        assert serial_out == pool_out
        assert "fixed-point-vs-exact-mva" in serial_out


class TestSocketExecution:
    def test_results_match_serial(self):
        items = [-3, -1, -4, -1, -5]
        assert _socket_engine(workers=2).map(abs, items) == [3, 1, 4, 1, 5]

    def test_unpicklable_task_fails_like_the_pool_backend(self):
        # A lambda cannot be shipped to a socket worker; the engine must
        # raise a pickling error for that task (not hang or blame the
        # worker) while the healthy tasks still execute.
        engine = _socket_engine(workers=2)
        with pytest.raises((pickle.PicklingError, TypeError, AttributeError)) as excinfo:
            engine.run(
                [
                    SweepTask(fn=abs, args=(-1,)),
                    SweepTask(fn=lambda x: x, args=(2,), label="unpicklable"),  # repro: noqa REP201
                    SweepTask(fn=abs, args=(-3,)),
                ]
            )
        assert not isinstance(excinfo.value, WorkerError)

    def test_exotic_serialisation_failure_does_not_hang(self):
        # A payload whose __reduce__ raises something outside the standard
        # pickling exceptions must still be reported (not orphan the
        # claimed task and hang the coordinator forever).
        class EvilPayload:
            def __reduce__(self):
                raise RuntimeError("payload refuses to serialise")

        with pytest.raises(RuntimeError, match="refuses to serialise"):
            _socket_engine(workers=1).run(
                [SweepTask(fn=abs, args=(-1,)), SweepTask(fn=abs, args=(EvilPayload(),))]
            )

    def test_undeserialisable_reply_is_a_task_error_not_worker_loss(self):
        # A worker whose reply frame does not unpickle (version skew in
        # multi-host mode) must surface as a ProtocolError for that task,
        # not burn the requeue budget and blame a lost worker.
        server = socket.create_server(("127.0.0.1", 0))
        host, port = server.getsockname()[:2]

        def fake_worker():
            conn, _peer = server.accept()
            with conn:
                send_message(conn, ("hello", {"pid": 0, "host": "fake"}))
                recv_message(conn)  # the task frame
                garbage = b"not a pickle"
                conn.sendall(len(garbage).to_bytes(8, "big") + garbage)

        import threading

        thread = threading.Thread(target=fake_worker, daemon=True)
        thread.start()
        try:
            backend = SocketBackend(
                worker_addresses=[(host, port)], accept_timeout=ACCEPT_TIMEOUT
            )
            with pytest.raises(ProtocolError):
                SweepEngine(backend=backend).map(abs, [-1])
        finally:
            thread.join(timeout=10)
            server.close()

    def test_task_error_keeps_original_type(self):
        # math.sqrt(-1) raises ValueError inside the worker; the pickled
        # exception must resurface unchanged, annotated with the task id.
        with pytest.raises(ValueError) as excinfo:
            _socket_engine(workers=1).map(math.sqrt, [4.0, -1.0])
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("task #1" in note for note in notes)

    def test_worker_loss_raises_worker_error(self):
        # os._exit kills the worker before it can reply; the task is
        # requeued onto the next worker, which also dies — once no worker
        # is left (and none can rejoin) the engine must raise WorkerError.
        with pytest.raises(WorkerError):
            _socket_engine(workers=2).map(os._exit, [3, 3, 3])

    def test_unreachable_worker_address_raises_worker_error(self):
        # Nothing listens on the reserved discard port.
        backend = SocketBackend(worker_addresses=[("127.0.0.1", 9)], accept_timeout=2.0)
        with pytest.raises(WorkerError):
            SweepEngine(backend=backend).map(abs, [-1])

    def test_listen_daemon_dial_out(self, tmp_path):
        # Multi-host mode on localhost: a --listen daemon serves two
        # successive sweeps dialled out to it.
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(src_root, "src"), env.get("PYTHONPATH")) if p
        )
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.parallel.worker", "--listen", "127.0.0.1:0",
             "--max-sessions", "2"],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        try:
            banner = daemon.stdout.readline().strip()
            assert banner.startswith("listening on ")
            address = banner.split()[-1]
            backend = SocketBackend(worker_addresses=[address], accept_timeout=ACCEPT_TIMEOUT)
            engine = SweepEngine(backend=backend)
            assert engine.map(abs, [-5, -6]) == [5, 6]
            assert engine.map(abs, [-7]) == [7]
        finally:
            daemon.terminate()
            daemon.wait(timeout=10)


class TestBackendBitIdentity:
    """The acceptance criterion: serial == pool == socket, by equality."""

    def test_replication_sweep_identical_across_backends(self, small_case1_system):
        config = SimulationConfig(num_messages=300, seed=11)
        serial = run_replications(small_case1_system, config, replications=3, jobs=1)
        pooled = run_replications(small_case1_system, config, replications=3, jobs=3)
        socketed = run_replications(
            small_case1_system, config, replications=3, engine=_socket_engine(workers=2)
        )
        assert serial.per_replication == pooled.per_replication == socketed.per_replication
        assert serial.mean_latency_s == pooled.mean_latency_s == socketed.mean_latency_s
        assert serial.latency_interval == pooled.latency_interval == socketed.latency_interval

    def test_figure_sweep_identical_across_backends(self):
        from repro.experiments.figures import run_figure

        kwargs = dict(
            include_simulation=True,
            cluster_counts=[2, 4],
            message_sizes=[512],
            simulation_messages=200,
            replications=2,
        )
        serial = run_figure(4, jobs=1, **kwargs)
        pooled = run_figure(4, jobs=2, **kwargs)
        socketed = run_figure(4, engine=_socket_engine(workers=2), **kwargs)
        assert serial.points == pooled.points == socketed.points
        # Distinct sweep points must not reuse each other's latency stream:
        # identical values would indicate shared seeds.
        latencies = [p.simulation_latency_ms for p in serial.points]
        assert len(set(latencies)) == len(latencies)

    def test_backend_parameter_reaches_run_replications(self, small_case1_system):
        config = SimulationConfig(num_messages=200, seed=5)
        by_jobs = run_replications(small_case1_system, config, replications=2, jobs=1)
        by_backend = run_replications(
            small_case1_system, config, replications=2, backend="serial"
        )
        assert by_jobs.per_replication == by_backend.per_replication
