"""Tests for the crash-tolerant sweep journal (checkpoint/resume).

The acceptance bar: a sweep killed mid-run and resumed from its journal
produces results *bit-identical* to an uninterrupted run, on every backend
— asserted by equality, never timing (the CI box has 1 CPU).  Corrupt or
truncated journals degrade to re-execution, never to wrong results.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.errors import CheckpointError
from repro.parallel import (
    SocketBackend,
    SweepEngine,
    SweepJournal,
    SweepTask,
)
from repro.parallel.checkpoint import ABORT_EXIT_CODE
from repro.simulation.runner import replication_configs, run_replications, run_simulation_task
from repro.simulation.simulator import SimulationConfig

#: Generous worker-join budget for the 1-CPU CI box (workers import numpy).
ACCEPT_TIMEOUT = 60.0

_SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src"
)


def _log_and_square(x, log_path):
    """Picklable task that records every execution (to count re-runs)."""
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{x}\n")
    return x * x


def _executions(log_path) -> int:
    if not os.path.exists(log_path):
        return 0
    with open(log_path, "r", encoding="utf-8") as handle:
        return len(handle.read().split())


def _tasks(log_path, count=4):
    return [
        SweepTask(fn=_log_and_square, args=(i, str(log_path)), label=f"square[{i}]")
        for i in range(count)
    ]


def _truncate_journal(path, keep_done: int) -> None:
    """Rewrite a journal keeping the header(s) and the first N done records."""
    kept, done = [], 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            if record["kind"] == "done":
                if done >= keep_done:
                    continue
                done += 1
            kept.append(line)
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(kept)


class TestJournalBasics:
    def test_completed_tasks_are_not_reexecuted(self, tmp_path):
        journal_path = tmp_path / "sweep.journal"
        log = tmp_path / "executions.log"
        first = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        assert first == [0, 1, 4, 9]
        assert _executions(log) == 4
        again = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        assert again == first
        assert _executions(log) == 4  # everything restored, nothing re-ran

    def test_partial_journal_resumes_only_unfinished(self, tmp_path):
        journal_path = tmp_path / "sweep.journal"
        log = tmp_path / "executions.log"
        reference = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        _truncate_journal(journal_path, keep_done=2)
        resumed = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        assert resumed == reference
        assert _executions(log) == 4 + 2  # only the two dropped tasks re-ran

    def test_journal_accepts_plain_path(self, tmp_path):
        journal_path = str(tmp_path / "sweep.journal")
        engine = SweepEngine(jobs=1, journal=journal_path)
        assert isinstance(engine.journal, SweepJournal)
        assert engine.map(abs, [-2]) == [2]
        assert os.path.exists(journal_path)

    def test_progress_reports_restored_tasks(self, tmp_path):
        journal_path = tmp_path / "sweep.journal"
        log = tmp_path / "executions.log"
        SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        seen = []
        engine = SweepEngine(
            jobs=1,
            journal=SweepJournal(journal_path),
            progress=lambda done, total, label: seen.append((done, total, label)),
        )
        engine.run(_tasks(log))
        assert seen == [(i + 1, 4, f"square[{i}]") for i in range(4)]

    def test_multi_run_campaign_matches_runs_by_ordinal(self, tmp_path):
        journal_path = tmp_path / "campaign.journal"
        log = tmp_path / "executions.log"
        engine = SweepEngine(jobs=1, journal=SweepJournal(journal_path))
        first = engine.run(_tasks(log, count=2))
        second = engine.run(_tasks(log, count=3))
        assert _executions(log) == 5
        resumed = SweepEngine(jobs=1, journal=SweepJournal(journal_path))
        assert resumed.run(_tasks(log, count=2)) == first
        assert resumed.run(_tasks(log, count=3)) == second
        assert _executions(log) == 5  # both runs fully restored


class TestJournalCorruption:
    def test_truncated_last_record_is_discarded_not_fatal(self, tmp_path):
        journal_path = tmp_path / "sweep.journal"
        log = tmp_path / "executions.log"
        reference = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        with open(journal_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(journal_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
            handle.write(lines[-1][: len(lines[-1]) // 2])  # half-written record
        with pytest.warns(UserWarning, match="discarding line"):
            journal = SweepJournal(journal_path)
        resumed = SweepEngine(jobs=1, journal=journal).run(_tasks(log))
        assert resumed == reference
        assert _executions(log) == 4 + 1  # only the mangled task re-ran

    def test_corrupt_middle_line_discards_the_rest(self, tmp_path):
        journal_path = tmp_path / "sweep.journal"
        log = tmp_path / "executions.log"
        reference = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        with open(journal_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[2] = "this is not json\n"  # header, done0, GARBAGE, done2, done3
        with open(journal_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.warns(UserWarning, match="discarding line 3"):
            journal = SweepJournal(journal_path)
        assert journal.restored_count == 1
        resumed = SweepEngine(jobs=1, journal=journal).run(_tasks(log))
        assert resumed == reference
        assert _executions(log) == 4 + 3

    def test_undecodable_pickle_payload_is_discarded(self, tmp_path):
        journal_path = tmp_path / "sweep.journal"
        log = tmp_path / "executions.log"
        SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        with open(journal_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        record = json.loads(lines[1])
        record["value"] = "bm90IGEgcGlja2xl"  # base64("not a pickle")
        lines[1] = json.dumps(record) + "\n"
        with open(journal_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.warns(UserWarning, match="discarding line 2"):
            journal = SweepJournal(journal_path)
        assert journal.restored_count == 0

    def test_unterminated_final_record_is_partial_even_if_parseable(self, tmp_path):
        # A kill can leave a record's bytes without the line terminator;
        # trusting it would make the next append merge two records onto
        # one line, so it must be treated as partial and truncated away.
        journal_path = tmp_path / "sweep.journal"
        log = tmp_path / "executions.log"
        reference = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        with open(journal_path, "r", encoding="utf-8") as handle:
            content = handle.read()
        with open(journal_path, "w", encoding="utf-8") as handle:
            handle.write(content.rstrip("\n"))  # complete JSON, no newline
        with pytest.warns(UserWarning, match="unterminated final record"):
            journal = SweepJournal(journal_path)
        assert journal.restored_count == 3
        resumed = SweepEngine(jobs=1, journal=journal).run(_tasks(log))
        assert resumed == reference
        assert _executions(log) == 4 + 1
        # The healed file must be cleanly parseable by the next resume.
        assert SweepJournal(journal_path).restored_count == 4

    def test_empty_and_missing_files_are_fine(self, tmp_path):
        missing = SweepJournal(tmp_path / "never-written.journal")
        assert missing.restored_count == 0
        empty_path = tmp_path / "empty.journal"
        empty_path.write_text("")
        assert SweepJournal(empty_path).restored_count == 0

    def test_fingerprint_mismatch_raises_checkpoint_error(self, tmp_path):
        journal_path = tmp_path / "sweep.journal"
        log = tmp_path / "executions.log"
        SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        other_tasks = [
            SweepTask(fn=_log_and_square, args=(i, str(log)), label=f"DIFFERENT[{i}]")
            for i in range(4)
        ]
        with pytest.raises(CheckpointError, match="different campaign"):
            SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(other_tasks)

    def test_task_count_mismatch_raises_checkpoint_error(self, tmp_path):
        journal_path = tmp_path / "sweep.journal"
        log = tmp_path / "executions.log"
        SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        with pytest.raises(CheckpointError):
            SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log, count=6))

    def test_changed_arguments_with_same_labels_raise(self, tmp_path):
        # Labels alone cannot encode every parameter (e.g. --messages or
        # the base seed); the fingerprint must still catch the change
        # instead of silently mixing two campaign definitions.
        journal_path = tmp_path / "sweep.journal"
        log = tmp_path / "executions.log"

        def tasks_with_offset(offset):
            return [
                SweepTask(fn=_log_and_square, args=(i + offset, str(log)), label=f"t[{i}]")
                for i in range(3)
            ]

        SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(tasks_with_offset(0))
        with pytest.raises(CheckpointError, match="different campaign"):
            SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(tasks_with_offset(10))

    def test_unpicklable_arguments_fall_back_to_label_fingerprint(self, tmp_path):
        journal_path = tmp_path / "sweep.journal"
        unpicklable = lambda x: -x  # noqa: E731 — serial tasks may be closures
        tasks = [SweepTask(fn=(lambda f: f(3)), args=(unpicklable,), label="t")]  # repro: noqa REP201
        first = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(tasks)
        assert first == [-3]
        # A fresh incarnation with equivalent (still unpicklable) tasks
        # restores rather than raising.
        again = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(tasks)
        assert again == [-3]

    def test_corrupt_tail_heals_on_resume(self, tmp_path):
        # Records appended after a corrupt line must be visible to the
        # *next* resume: the journal truncates the bad tail before
        # appending, so repeated crash-resume cycles do not re-execute the
        # same tasks forever.
        journal_path = tmp_path / "sweep.journal"
        log = tmp_path / "executions.log"
        reference = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        with open(journal_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[2] = "this is not json\n"
        with open(journal_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.warns(UserWarning, match="discarding line 3"):
            resumed = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        assert resumed == reference
        assert _executions(log) == 4 + 3
        # Third incarnation: the healed journal restores everything.
        final = SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(_tasks(log))
        assert final == reference
        assert _executions(log) == 4 + 3  # nothing re-ran this time


class TestCrashResumeBitIdentity:
    """Acceptance criterion: kill + resume == uninterrupted, per backend."""

    def _simulation_tasks(self, system):
        config = SimulationConfig(num_messages=300, seed=11)
        return [
            SweepTask(
                fn=run_simulation_task,
                args=(system, rep_config),
                label=f"rep[{i}]",
            )
            for i, rep_config in enumerate(replication_configs(config, 3))
        ]

    @pytest.mark.parametrize("backend_name", ["serial", "pool", "socket"])
    def test_resumed_equals_uninterrupted(self, backend_name, tmp_path, small_case1_system):
        tasks = self._simulation_tasks(small_case1_system)
        uninterrupted = SweepEngine(jobs=1).run(tasks)

        # Simulate the kill: journal the full sweep, then drop every record
        # past the first — the state an interrupted campaign leaves behind.
        journal_path = tmp_path / "campaign.journal"
        SweepEngine(jobs=1, journal=SweepJournal(journal_path)).run(tasks)
        _truncate_journal(journal_path, keep_done=1)

        if backend_name == "serial":
            engine = SweepEngine(jobs=1, journal=SweepJournal(journal_path))
        elif backend_name == "pool":
            engine = SweepEngine(jobs=2, backend="pool", journal=SweepJournal(journal_path))
        else:
            engine = SweepEngine(
                backend=SocketBackend(spawn_workers=2, accept_timeout=ACCEPT_TIMEOUT),
                journal=SweepJournal(journal_path),
            )
        assert engine.run(tasks) == uninterrupted

    def test_service_distribution_ablation_honours_checkpoint(self, tmp_path):
        from repro.experiments.ablations import service_distribution_ablation

        journal_path = tmp_path / "svc.journal"
        first = service_distribution_ablation(
            num_clusters=4, num_messages=300, checkpoint=str(journal_path)
        )
        assert journal_path.exists()
        assert SweepJournal(journal_path).restored_count == 2
        resumed = service_distribution_ablation(
            num_clusters=4, num_messages=300, checkpoint=str(journal_path)
        )
        assert resumed.to_rows() == first.to_rows()

    def test_run_replications_checkpoint_roundtrip(self, tmp_path, small_case1_system):
        config = SimulationConfig(num_messages=200, seed=5)
        reference = run_replications(small_case1_system, config, replications=2, jobs=1)
        journal_path = tmp_path / "reps.journal"
        first = run_replications(
            small_case1_system, config, replications=2, jobs=1, checkpoint=str(journal_path)
        )
        resumed = run_replications(
            small_case1_system, config, replications=2, jobs=1, checkpoint=str(journal_path)
        )
        assert first.per_replication == reference.per_replication
        assert resumed.per_replication == reference.per_replication


class TestAbortHookAndCli:
    """The deterministic-kill hook and the --checkpoint/--resume flags."""

    def _cli(self, *argv, env=None, cwd=None):
        full_env = dict(os.environ)
        full_env["PYTHONPATH"] = os.pathsep.join(
            p for p in (_SRC_DIR, os.environ.get("PYTHONPATH")) if p
        )
        full_env.update(env or {})
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            env=full_env, cwd=cwd, capture_output=True, text=True,
        )

    @pytest.mark.slow
    def test_cli_kill_and_resume_matches_uninterrupted(self, tmp_path):
        figure_args = (
            "figure", "4", "--simulate", "--clusters", "2", "4",
            "--sizes", "512", "--messages", "300", "--replications", "2",
        )
        journal = str(tmp_path / "fig4.journal")
        killed = self._cli(
            *figure_args, "--checkpoint", journal,
            env={"REPRO_CHECKPOINT_ABORT_AFTER": "2"}, cwd=str(tmp_path),
        )
        assert killed.returncode == ABORT_EXIT_CODE
        resumed = self._cli(
            *figure_args, "--resume", journal, "--csv", "resumed.csv", cwd=str(tmp_path)
        )
        assert resumed.returncode == 0, resumed.stderr
        fresh = self._cli(*figure_args, "--csv", "fresh.csv", cwd=str(tmp_path))
        assert fresh.returncode == 0, fresh.stderr
        assert (tmp_path / "resumed.csv").read_text() == (tmp_path / "fresh.csv").read_text()

    def test_resolve_engine_rejects_conflicting_journals(self, tmp_path):
        from repro.parallel import resolve_engine

        engine = SweepEngine(jobs=1, journal=SweepJournal(tmp_path / "a.journal"))
        with pytest.raises(ValueError, match="already has a journal"):
            resolve_engine(engine=engine, checkpoint=str(tmp_path / "b.journal"))

    def test_resolve_engine_accepts_repeated_same_checkpoint(self, tmp_path, small_case1_system):
        # A campaign loop reuses one engine across several driver calls
        # that all pass the same checkpoint path: the first call attaches
        # the journal and later calls must keep it (run ordinals continue)
        # instead of raising or re-opening the file mid-campaign.
        config = SimulationConfig(num_messages=200, seed=7)
        path = str(tmp_path / "campaign.journal")
        engine = SweepEngine(jobs=1)
        first = run_replications(
            small_case1_system, config, replications=2, engine=engine, checkpoint=path
        )
        journal = engine.journal
        second = run_replications(
            small_case1_system, config, replications=2, engine=engine, checkpoint=path
        )
        assert engine.journal is journal  # same attached journal, not reopened
        assert second.per_replication == first.per_replication

    def test_cli_checkpoint_error_is_a_clean_exit(self, tmp_path):
        # Resuming with changed parameters must print the CheckpointError
        # message, not a traceback.  (The ratio study is closed-form and
        # vectorized — it journals no tasks — so the campaign here is a
        # small simulating figure sweep.)
        journal = str(tmp_path / "fig4.journal")
        base = ["figure", "4", "--simulate", "--sizes", "512", "--messages", "100"]
        first = self._cli(*base, "--clusters", "2", "--checkpoint", journal,
                          cwd=str(tmp_path))
        assert first.returncode == 0, first.stderr
        clashed = self._cli(*base, "--clusters", "2", "--resume", journal,
                            "--csv", "x.csv", cwd=str(tmp_path), env={"COLUMNS": "80"})
        assert clashed.returncode == 0  # same campaign resumes fine
        # Now a different campaign definition against the same journal:
        mismatch = self._cli(*base, "--clusters", "2", "4", "--resume", journal,
                             cwd=str(tmp_path))
        assert mismatch.returncode != 0
        assert "checkpoint error:" in mismatch.stderr
        assert "Traceback" not in mismatch.stderr

    def test_resume_requires_existing_journal(self, tmp_path):
        from repro.cli import build_engine, build_parser

        args = build_parser().parse_args(
            ["ratio", "--resume", str(tmp_path / "absent.journal")]
        )
        with pytest.raises(SystemExit, match="no such journal"):
            build_engine(args)

    def test_checkpoint_and_resume_are_mutually_exclusive(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["ratio", "--checkpoint", "a", "--resume", "b"])
        assert "not allowed with" in capsys.readouterr().err

    def test_checkpoint_flags_on_every_sweep_command(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["figure", "4", "--checkpoint", "j"],
            ["ratio", "--checkpoint", "j"],
            ["validate", "--checkpoint", "j"],
            ["ablation", "message-size", "--checkpoint", "j"],
            ["report", "--checkpoint", "j"],
        ):
            assert parser.parse_args(argv).checkpoint == "j"

    def test_closed_form_ablation_accepts_checkpoint(self, tmp_path, capsys):
        # fixed-point-vs-mva now runs as a 2-task sweep through the
        # pipeline runner, so --checkpoint/--resume journal it like any
        # other ablation (the flags used to be rejected).
        from repro.cli import main

        journal = str(tmp_path / "mva.journal")
        assert main(["ablation", "fixed-point-vs-mva", "--checkpoint", journal]) == 0
        first = capsys.readouterr().out
        assert os.path.exists(journal)
        assert main(["ablation", "fixed-point-vs-mva", "--resume", journal]) == 0
        assert capsys.readouterr().out == first

    def test_cli_checkpoint_then_resume_ratio(self, tmp_path):
        journal = str(tmp_path / "ratio.journal")
        first = self._cli("ratio", "--checkpoint", journal, "--csv", "a.csv", cwd=str(tmp_path))
        assert first.returncode == 0, first.stderr
        resumed = self._cli("ratio", "--resume", journal, "--csv", "b.csv", cwd=str(tmp_path))
        assert resumed.returncode == 0, resumed.stderr
        assert (tmp_path / "a.csv").read_text() == (tmp_path / "b.csv").read_text()
