"""Fixture-snippet tests: every rule, one bad and one good snippet each.

Snippets are linted under *virtual* paths (``src/repro/des/snippet.py``)
so the scope-gated rules see the module names they are gated on without
touching the working tree.  Two snippets are reduced reproductions of real
past bugs: the PR 1 ``seed + i`` replication-seed bug (REP103) and the
PR 3 lambda-into-the-sweep bug (REP201).
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_source

#: Virtual paths mapping into the scoped packages.
DES_PATH = "src/repro/des/snippet.py"
HOT_PATH = "src/repro/des/monitor.py"  # member of the REP301 hot-module set
SIM_PATH = "src/repro/simulation/snippet.py"
PIPE_PATH = "src/repro/experiments/snippet.py"
TOOL_PATH = "tools/snippet.py"  # outside every scoped package


def rule_ids(source: str, path: str = DES_PATH):
    return [finding.rule for finding in lint_source(source, path)]


# ---------------------------------------------------------------- REP101


class TestNondeterministicRng:
    def test_bad_global_random_call(self):
        source = "import random\nvalue = random.random()\n"
        assert rule_ids(source) == ["REP101"]

    def test_bad_np_global_draw(self):
        source = "import numpy as np\nvalue = np.random.rand(3)\n"
        assert rule_ids(source) == ["REP101"]

    def test_bad_unseeded_default_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rule_ids(source) == ["REP101"]

    def test_good_seeded_constructors(self):
        source = (
            "import numpy as np\n"
            "ss = np.random.SeedSequence(7)\n"
            "rng = np.random.default_rng(ss)\n"
            "gen = np.random.Generator(np.random.PCG64(ss))\n"
        )
        assert rule_ids(source) == []

    def test_good_generator_method_not_flagged(self):
        # rng.random() is a draw from an explicit stream, not global state.
        source = "def draw(rng):\n    return rng.random()\n"
        assert rule_ids(source) == []

    def test_out_of_scope_module_not_flagged(self):
        source = "import random\nvalue = random.random()\n"
        assert rule_ids(source, TOOL_PATH) == []

    def test_suppression_honored(self):
        source = "import random\nvalue = random.random()  # repro: noqa REP101\n"
        assert rule_ids(source) == []


# ---------------------------------------------------------------- REP102


class TestWallClock:
    def test_bad_time_time(self):
        source = "import time\nstamp = time.time()\n"
        assert rule_ids(source) == ["REP102"]

    def test_bad_datetime_now(self):
        source = "import datetime\nstamp = datetime.datetime.now()\n"
        assert rule_ids(source) == ["REP102"]

    def test_good_monotonic_timer(self):
        source = "import time\nstart = time.monotonic()\nelapsed = time.perf_counter()\n"
        assert rule_ids(source) == []

    def test_suppression_honored(self):
        source = "import time\nstamp = time.time()  # repro: noqa REP102\n"
        assert rule_ids(source) == []


# ---------------------------------------------------------------- REP103


class TestSeedArithmetic:
    def test_bad_pr1_reproduction(self):
        # Reduced reproduction of the PR 1 bug: replication seeds derived
        # by offsetting the master seed, which correlates the streams.
        source = (
            "def run_replications(seed, count):\n"
            "    return [simulate(seed + i) for i in range(count)]\n"
        )
        assert rule_ids(source) == ["REP103"]

    def test_bad_attribute_seed(self):
        source = "def spawn(self, k):\n    return Streams(self._seed * 31 + k)\n"
        assert rule_ids(source) == ["REP103"]

    def test_good_seed_sequence_spawn(self):
        source = (
            "import numpy as np\n"
            "def run_replications(seed, count):\n"
            "    children = np.random.SeedSequence(seed).spawn(count)\n"
            "    return [simulate(child) for child in children]\n"
        )
        assert rule_ids(source) == []

    def test_good_unrelated_arithmetic(self):
        source = "def f(n_seeds):\n    return n_seeds + 1\n"
        assert rule_ids(source) == []

    def test_applies_outside_runtime_packages(self):
        source = "def f(seed, i):\n    return seed + i\n"
        assert rule_ids(source, TOOL_PATH) == ["REP103"]

    def test_suppression_honored(self):
        source = "def f(seed, i):\n    return seed + i  # repro: noqa REP103\n"
        assert rule_ids(source) == []


# ---------------------------------------------------------------- REP201


class TestUnpicklableTask:
    def test_bad_pr3_reproduction_lambda_task(self):
        # Reduced reproduction of the PR 3 bug: a lambda handed to the
        # sweep dies with PicklingError on every multi-process backend.
        source = (
            "from repro.parallel import SweepEngine, SweepTask\n"
            "tasks = [SweepTask(fn=lambda x: x * 2, args=(i,)) for i in range(4)]\n"
        )
        assert rule_ids(source, PIPE_PATH) == ["REP201"]

    def test_bad_lambda_into_engine_map(self):
        source = "def sweep(engine, items):\n    return engine.map(lambda x: x + 1, items)\n"
        assert rule_ids(source, PIPE_PATH) == ["REP201"]

    def test_bad_nested_function_task(self):
        source = (
            "def sweep(engine, items):\n"
            "    def worker(x):\n"
            "        return x + 1\n"
            "    return engine.map(worker, items)\n"
        )
        assert rule_ids(source, PIPE_PATH) == ["REP201"]

    def test_good_module_level_function(self):
        source = (
            "def worker(x):\n"
            "    return x + 1\n"
            "def sweep(engine, items):\n"
            "    return engine.map(worker, items)\n"
        )
        assert rule_ids(source, PIPE_PATH) == []

    def test_good_builtin_map_with_lambda(self):
        # Plain builtin map never pickles; must not be flagged.
        source = "squares = list(map(lambda x: x * x, range(4)))\n"
        assert rule_ids(source, PIPE_PATH) == []

    def test_suppression_honored(self):
        source = "r = engine.map(lambda x: x, items)  # repro: noqa REP201\n"
        assert rule_ids(source, PIPE_PATH) == []


# ---------------------------------------------------------------- REP301


class TestMissingSlots:
    def test_bad_unslotted_class_in_hot_module(self):
        source = "class FastThing:\n    def __init__(self):\n        self.x = 1\n"
        assert rule_ids(source, HOT_PATH) == ["REP301"]

    def test_good_slots_declared(self):
        source = "class FastThing:\n    __slots__ = ('x',)\n"
        assert rule_ids(source, HOT_PATH) == []

    def test_good_dataclass_slots(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class Record:\n"
            "    x: int\n"
        )
        assert rule_ids(source, HOT_PATH) == []

    def test_good_exception_exempt(self):
        source = "class KernelError(Exception):\n    pass\n"
        assert rule_ids(source, HOT_PATH) == []

    def test_not_applied_outside_hot_modules(self):
        source = "class SlowThing:\n    pass\n"
        assert rule_ids(source, PIPE_PATH) == []

    def test_suppression_honored(self):
        source = "class FastThing:  # repro: noqa REP301\n    pass\n"
        assert rule_ids(source, HOT_PATH) == []


# ---------------------------------------------------------------- REP302


class TestSlottedSubclassDict:
    def test_bad_subclass_without_slots(self):
        source = "class MyTimeout(Timeout):\n    pass\n"
        assert rule_ids(source, SIM_PATH) == ["REP302"]

    def test_good_subclass_with_empty_slots(self):
        source = "class MyTimeout(Timeout):\n    __slots__ = ()\n"
        assert rule_ids(source, SIM_PATH) == []

    def test_good_subclass_of_unslotted_base(self):
        source = "class MyStore(Store):\n    pass\n"
        assert rule_ids(source, SIM_PATH) == []

    def test_suppression_honored(self):
        source = "class MyTimeout(Timeout):  # repro: noqa REP302\n    pass\n"
        assert rule_ids(source, SIM_PATH) == []


# ---------------------------------------------------------------- REP401


class TestDesYieldProtocol:
    def test_bad_constant_yield(self):
        source = (
            "def agent(env):\n"
            "    yield 42\n"
            "def build(env):\n"
            "    env.process(agent(env))\n"
        )
        assert rule_ids(source, SIM_PATH) == ["REP401"]

    def test_bad_bare_yield(self):
        source = (
            "def agent(env):\n"
            "    yield\n"
            "def build(env):\n"
            "    env.process(agent(env))\n"
        )
        assert rule_ids(source, SIM_PATH) == ["REP401"]

    def test_bad_uncalled_registration(self):
        source = "def build(env, agent):\n    env.process(agent)\n"
        assert rule_ids(source, SIM_PATH) == ["REP401"]

    def test_good_event_yields(self):
        source = (
            "def agent(env, centre, message):\n"
            "    yield env.timeout(1.0)\n"
            "    yield centre.begin(message)\n"
            "def build(env, centre, message):\n"
            "    env.process(agent(env, centre, message))\n"
        )
        assert rule_ids(source, SIM_PATH) == []

    def test_good_unregistered_generator_ignored(self):
        # Not every generator is a DES process; only registered ones count.
        source = "def counter():\n    yield 1\n    yield 2\n"
        assert rule_ids(source, SIM_PATH) == []

    def test_suppression_honored(self):
        source = (
            "def agent(env):\n"
            "    yield 42  # repro: noqa REP401\n"
            "def build(env):\n"
            "    env.process(agent(env))\n"
        )
        assert rule_ids(source, SIM_PATH) == []


# ---------------------------------------------------------------- REP501


class TestFrozenSpecMutation:
    def test_bad_spec_attribute_assignment(self):
        source = "def tweak(spec):\n    spec.mean_message_size = 4096.0\n"
        assert rule_ids(source, PIPE_PATH) == ["REP501"]

    def test_bad_augmented_assignment(self):
        source = "def tweak(run_spec):\n    run_spec.replications += 1\n"
        assert rule_ids(source, PIPE_PATH) == ["REP501"]

    def test_bad_object_setattr_on_non_self(self):
        source = "def tweak(spec):\n    object.__setattr__(spec, 'seed', 1)\n"
        assert rule_ids(source, PIPE_PATH) == ["REP501"]

    def test_good_dataclasses_replace(self):
        source = (
            "from dataclasses import replace\n"
            "def tweak(spec):\n"
            "    return replace(spec, mean_message_size=4096.0)\n"
        )
        assert rule_ids(source, PIPE_PATH) == []

    def test_good_post_init_setattr_on_self(self):
        source = (
            "class Spec:\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'seed', int(self.seed))\n"
        )
        assert rule_ids(source, PIPE_PATH) == []

    def test_good_non_spec_variable(self):
        source = "def f(monitor):\n    monitor.name = 'latency'\n"
        assert rule_ids(source, PIPE_PATH) == []

    def test_suppression_honored(self):
        source = "def tweak(spec):\n    spec.seed = 1  # repro: noqa REP501\n"
        assert rule_ids(source, PIPE_PATH) == []


# ---------------------------------------------------------------- REP601 / REP602


class TestErrorHygiene:
    def test_bad_bare_except(self):
        source = "try:\n    run()\nexcept:\n    cleanup()\n"
        assert rule_ids(source, PIPE_PATH) == ["REP601"]

    def test_bad_swallowed_broad_exception(self):
        source = "try:\n    run()\nexcept Exception:\n    pass\n"
        assert rule_ids(source, PIPE_PATH) == ["REP602"]

    def test_good_broad_handler_with_body(self):
        source = (
            "try:\n"
            "    run()\n"
            "except Exception as exc:\n"
            "    log(exc)\n"
            "    raise\n"
        )
        assert rule_ids(source, PIPE_PATH) == []

    def test_good_narrow_pass_handler(self):
        # Best-effort cleanup with a narrow type stays legal.
        source = "try:\n    sock.close()\nexcept OSError:\n    pass\n"
        assert rule_ids(source, PIPE_PATH) == []

    def test_bare_except_not_double_reported(self):
        source = "try:\n    run()\nexcept:\n    pass\n"
        assert rule_ids(source, PIPE_PATH) == ["REP601"]

    def test_suppression_honored(self):
        source = "try:\n    run()\nexcept Exception:  # repro: noqa REP602\n    pass\n"
        assert rule_ids(source, PIPE_PATH) == []


# ---------------------------------------------------------------- REP701


PAR_PATH = "src/repro/parallel/snippet.py"
SVC_PATH = "src/repro/service/snippet.py"


class TestConstantRetrySleep:
    def test_bad_literal_delay(self):
        source = (
            "import time\n"
            "def dial(connect):\n"
            "    for attempt in range(5):\n"
            "        try:\n"
            "            return connect()\n"
            "        except OSError:\n"
            "            time.sleep(0.5)\n"
        )
        assert rule_ids(source, PAR_PATH) == ["REP701"]

    def test_bad_unchanging_name(self):
        source = (
            "import time\n"
            "def poll(ready, retry_delay):\n"
            "    while not ready():\n"
            "        time.sleep(retry_delay)\n"
        )
        assert rule_ids(source, SVC_PATH) == ["REP701"]

    def test_good_backoff_iteration(self):
        source = (
            "import time\n"
            "def dial(connect, delays):\n"
            "    for delay in delays:\n"
            "        if connect():\n"
            "            return\n"
            "        time.sleep(delay)\n"
        )
        assert rule_ids(source, PAR_PATH) == []

    def test_good_indexed_backoff(self):
        source = (
            "import time\n"
            "def dial(connect, delays):\n"
            "    for attempt in range(len(delays)):\n"
            "        if connect():\n"
            "            return\n"
            "        time.sleep(delays[attempt])\n"
        )
        assert rule_ids(source, PAR_PATH) == []

    def test_good_delay_reassigned_in_loop(self):
        source = (
            "import time\n"
            "def dial(connect):\n"
            "    delay = 0.2\n"
            "    while not connect():\n"
            "        time.sleep(delay)\n"
            "        delay = min(delay * 2, 5.0)\n"
        )
        assert rule_ids(source, PAR_PATH) == []

    def test_innermost_loop_flagged_once(self):
        source = (
            "import time\n"
            "def spin():\n"
            "    while True:\n"
            "        for _ in range(3):\n"
            "            time.sleep(1.0)\n"
        )
        assert rule_ids(source, PAR_PATH) == ["REP701"]

    def test_out_of_scope_module_not_flagged(self):
        source = (
            "import time\n"
            "def pace():\n"
            "    while True:\n"
            "        time.sleep(0.5)\n"
        )
        assert rule_ids(source, DES_PATH) == []
        assert rule_ids(source, TOOL_PATH) == []

    def test_suppression_honored(self):
        source = (
            "import time\n"
            "def dial(connect):\n"
            "    while not connect():\n"
            "        time.sleep(0.5)  # repro: noqa REP701\n"
        )
        assert rule_ids(source, PAR_PATH) == []


# ---------------------------------------------------------------- blanket noqa


@pytest.mark.parametrize(
    "line",
    [
        "stamp = time.time()  # repro: noqa",
        "stamp = time.time()  # repro: noqa REP102, REP101",
        "stamp = time.time()  # REPRO: NOQA rep102",
    ],
)
def test_suppression_spellings(line):
    assert rule_ids(f"import time\n{line}\n") == []


def test_blanket_noqa_suppresses_multiple_rules_on_line():
    source = "import time, random\nx = (time.time(), random.random())  # repro: noqa\n"
    assert rule_ids(source) == []


def test_unrelated_noqa_id_does_not_suppress():
    source = "import time\nstamp = time.time()  # repro: noqa REP101\n"
    assert rule_ids(source) == ["REP102"]
