"""Engine, reporting and self-scan tests for ``repro.analysis``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    RULE_REGISTRY,
    LintEngine,
    format_report,
    lint_paths,
    lint_source,
    module_name_for,
    rule_catalogue,
    select_rules,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


# ---------------------------------------------------------------- registry


def test_registry_has_all_documented_rules():
    expected = {
        "REP101", "REP102", "REP103", "REP201", "REP301",
        "REP302", "REP401", "REP501", "REP601", "REP602",
        "REP701",
    }
    assert set(RULE_REGISTRY) == expected


def test_catalogue_rows_are_complete():
    for row in rule_catalogue():
        assert row["id"].startswith("REP")
        assert row["name"]
        assert row["rationale"]


# ---------------------------------------------------------------- module names


@pytest.mark.parametrize(
    "path,expected",
    [
        ("src/repro/des/core.py", "repro.des.core"),
        ("src/repro/des/__init__.py", "repro.des"),
        ("/abs/checkout/src/repro/simulation/snippet.py", "repro.simulation.snippet"),
        ("benchmarks/bench_simulator.py", "benchmarks.bench_simulator"),
        ("standalone.py", "standalone"),
    ],
)
def test_module_name_for(path, expected):
    assert module_name_for(Path(path)) == expected


# ---------------------------------------------------------------- select/ignore


def test_select_family_prefix():
    chosen = {cls.id for cls in select_rules(select=["REP1"])}
    assert chosen == {"REP101", "REP102", "REP103"}


def test_ignore_wins_over_select():
    chosen = {cls.id for cls in select_rules(select=["REP1"], ignore=["REP103"])}
    assert chosen == {"REP101", "REP102"}


def test_unknown_prefix_raises():
    with pytest.raises(ValueError, match="REP9"):
        select_rules(select=["REP9"])
    with pytest.raises(ValueError, match="ignore"):
        select_rules(ignore=["REP777"])


def test_selected_engine_only_reports_selected_rules():
    source = "import time, random\nx = time.time()\ny = random.random()\n"
    engine = LintEngine(select_rules(select=["REP102"]))
    findings = engine.lint_source(source, Path("src/repro/des/snippet.py"))
    assert [f.rule for f in findings] == ["REP102"]


# ---------------------------------------------------------------- REP000


def test_syntax_error_yields_rep000():
    findings = lint_source("def broken(:\n", "src/repro/des/broken.py")
    assert [f.rule for f in findings] == ["REP000"]
    assert "does not parse" in findings[0].message


# ---------------------------------------------------------------- tree runs


def test_run_over_directory(tmp_path):
    package = tmp_path / "src" / "repro" / "des"
    package.mkdir(parents=True)
    (package / "good.py").write_text("import time\nstart = time.monotonic()\n")
    (package / "bad.py").write_text("import time\nstamp = time.time()\n")
    (package / "__pycache__").mkdir()
    (package / "__pycache__" / "junk.py").write_text("import time\ntime.time()\n")

    report = lint_paths([tmp_path])
    assert report.files_scanned == 2  # __pycache__ skipped
    assert [f.rule for f in report.findings] == ["REP102"]
    assert report.findings[0].path.endswith("bad.py")
    assert report.exit_code() == 1


def test_run_counts_suppressions(tmp_path):
    target = tmp_path / "src" / "repro" / "des"
    target.mkdir(parents=True)
    (target / "mod.py").write_text("import time\nt = time.time()  # repro: noqa REP102\n")
    report = lint_paths([tmp_path])
    assert report.clean
    assert report.suppressed == 1
    assert report.exit_code() == 0


# ---------------------------------------------------------------- formatting


def _sample_report(tmp_path):
    target = tmp_path / "src" / "repro" / "des"
    target.mkdir(parents=True)
    (target / "mod.py").write_text("import time\nstamp = time.time()\n")
    return lint_paths([tmp_path])


def test_text_format(tmp_path):
    report = _sample_report(tmp_path)
    text = format_report(report, "text")
    assert "mod.py:2:9: REP102" in text
    assert "1 finding in 1 files" in text


def test_json_format(tmp_path):
    report = _sample_report(tmp_path)
    payload = json.loads(format_report(report, "json"))
    assert payload["files_scanned"] == 1
    assert payload["findings"][0]["rule"] == "REP102"
    assert payload["findings"][0]["line"] == 2


def test_github_format(tmp_path):
    report = _sample_report(tmp_path)
    annotation = format_report(report, "github")
    assert annotation.startswith("::error file=")
    assert "line=2" in annotation and "title=REP102" in annotation


def test_unknown_format_raises(tmp_path):
    with pytest.raises(ValueError, match="unknown format"):
        format_report(_sample_report(tmp_path), "xml")


# ---------------------------------------------------------------- self-scan


def test_self_scan_src_is_clean():
    """The repository's own runtime code passes its own linter."""
    report = lint_paths([REPO_ROOT / "src"])
    assert report.files_scanned > 50
    messages = [f"{f.path}:{f.line}: {f.rule} {f.message}" for f in report.findings]
    assert report.clean, "\n".join(messages)
    # The two documented suppressions (rng spawn, report figure seeds).
    assert report.suppressed >= 2


def test_self_scan_benchmarks_is_clean():
    report = lint_paths([REPO_ROOT / "benchmarks"])
    messages = [f"{f.path}:{f.line}: {f.rule} {f.message}" for f in report.findings]
    assert report.clean, "\n".join(messages)
