"""CLI plumbing tests for the ``repro lint`` verb."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture()
def bad_tree(tmp_path):
    target = tmp_path / "src" / "repro" / "des"
    target.mkdir(parents=True)
    (target / "mod.py").write_text("import time\nstamp = time.time()\n")
    return tmp_path


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "des"
    target.mkdir(parents=True)
    (target / "mod.py").write_text("import time\nstart = time.monotonic()\n")
    assert main(["lint", str(tmp_path)]) == 0
    assert "clean: 1 files scanned" in capsys.readouterr().out


def test_lint_findings_exit_one_text(bad_tree, capsys):
    assert main(["lint", str(bad_tree)]) == 1
    out = capsys.readouterr().out
    assert "REP102" in out and "mod.py:2:9" in out


def test_lint_json_format(bad_tree, capsys):
    assert main(["lint", str(bad_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "REP102"


def test_lint_github_format(bad_tree, capsys):
    assert main(["lint", str(bad_tree), "--format", "github"]) == 1
    assert capsys.readouterr().out.startswith("::error file=")


def test_lint_ignore_silences_rule(bad_tree, capsys):
    assert main(["lint", str(bad_tree), "--ignore", "REP102"]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_select_other_family(bad_tree, capsys):
    assert main(["lint", str(bad_tree), "--select", "REP6"]) == 0


def test_lint_unknown_select_exits_two(bad_tree, capsys):
    assert main(["lint", str(bad_tree), "--select", "REP9"]) == 2
    assert "matches no registered rule" in capsys.readouterr().err


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP101", "REP201", "REP301", "REP401", "REP501", "REP601"):
        assert rule_id in out


def test_lint_single_file_argument(bad_tree, capsys):
    target = bad_tree / "src" / "repro" / "des" / "mod.py"
    assert main(["lint", str(target)]) == 1
    assert "REP102" in capsys.readouterr().out
