"""Property-based tests for the DES kernel and the statistics toolkit."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.core import Environment
from repro.des.resources import Resource
from repro.des.rng import RandomStreams
from repro.stats.histogram import Histogram
from repro.stats.intervals import mean_confidence_interval
from repro.stats.online import RunningStatistics
from repro.stats.warmup import truncate_warmup

finite_floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False)


class TestEnvironmentProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_events_processed_in_time_order(self, delays):
        env = Environment()
        fired = []

        def waiter(env, delay):
            yield env.timeout(delay)
            fired.append(env.now)

        for delay in delays:
            env.process(waiter(env, delay))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert math.isclose(env.now, max(delays), rel_tol=1e-12) or env.now == max(delays)

    @given(
        service_times=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=30),
        capacity=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=100)
    def test_resource_never_exceeds_capacity(self, service_times, capacity):
        env = Environment()
        resource = Resource(env, capacity=capacity)
        concurrency = []

        def user(env, resource, service):
            with resource.request() as req:
                yield req
                concurrency.append(resource.count)
                yield env.timeout(service)

        for service in service_times:
            env.process(user(env, resource, service))
        env.run()
        assert len(concurrency) == len(service_times)
        assert max(concurrency) <= capacity

    @given(
        service_times=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=25)
    )
    @settings(max_examples=100)
    def test_single_server_total_time_is_sum_of_services(self, service_times):
        env = Environment()
        resource = Resource(env, capacity=1)

        def user(env, resource, service):
            with resource.request() as req:
                yield req
                yield env.timeout(service)

        for service in service_times:
            env.process(user(env, resource, service))
        env.run()
        assert math.isclose(env.now, sum(service_times), rel_tol=1e-9)


class TestRNGProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31), name=st.text(min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_streams_reproducible(self, seed, name):
        a = RandomStreams(seed).stream(name).exponential(1.0)
        b = RandomStreams(seed).stream(name).exponential(1.0)
        assert a == b

    @given(mean=st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=50)
    def test_exponential_positive(self, mean):
        rng = RandomStreams(0).stream("x")
        assert all(rng.exponential(mean) > 0 for _ in range(20))


class TestStatisticsProperties:
    @given(values=st.lists(finite_floats, min_size=1, max_size=500))
    @settings(max_examples=150)
    def test_running_statistics_match_numpy(self, values):
        stats = RunningStatistics()
        stats.push_many(values)
        arr = np.asarray(values)
        assert math.isclose(stats.mean, float(arr.mean()), rel_tol=1e-7, abs_tol=1e-6)
        assert stats.minimum == float(arr.min())
        assert stats.maximum == float(arr.max())
        if len(values) > 1:
            assert math.isclose(
                stats.variance, float(arr.var(ddof=1)), rel_tol=1e-6, abs_tol=1e-5
            )

    @given(
        values=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                        min_size=2, max_size=200),
        confidence=st.sampled_from([0.9, 0.95, 0.99]),
    )
    @settings(max_examples=150)
    def test_confidence_interval_contains_sample_mean(self, values, confidence):
        ci = mean_confidence_interval(values, confidence)
        assert ci.lower <= ci.mean <= ci.upper
        assert ci.half_width >= 0.0

    @given(values=st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                           min_size=1, max_size=400))
    @settings(max_examples=150)
    def test_warmup_truncation_never_removes_everything(self, values):
        steady, cutoff = truncate_warmup(values, method="mser5")
        assert cutoff >= 0
        assert len(steady) + cutoff == len(values)
        assert len(steady) >= min(len(values), 10)

    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                        min_size=1, max_size=300),
        bins=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=150)
    def test_histogram_conserves_counts(self, values, bins):
        hist = Histogram(0.0, 100.0, bins=bins)
        hist.add_many(values)
        assert hist.total == len(values)
        assert int(hist.counts.sum()) + hist.underflow + hist.overflow == len(values)
