"""Property-based tests (hypothesis) for the queueing substrate."""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.queueing.distributions import Deterministic, Erlang, Exponential, HyperExponential
from repro.queueing.finite_source import MachineRepairmanQueue, effective_rate_correction
from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import MM1KQueue, MM1Queue
from repro.queueing.mmc import MMCQueue, erlang_b
from repro.queueing.mva import MVAStation, mean_value_analysis

rates = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)


class TestMM1Properties:
    @given(arrival=rates, service=rates)
    @settings(max_examples=200)
    def test_littles_law_holds_whenever_stable(self, arrival, service):
        assume(arrival < 0.999 * service)
        q = MM1Queue(arrival, service)
        assert math.isclose(q.mean_number_in_system, arrival * q.mean_sojourn_time, rel_tol=1e-9)
        assert math.isclose(q.mean_number_in_queue, arrival * q.mean_waiting_time, rel_tol=1e-9)

    @given(arrival=rates, service=rates)
    @settings(max_examples=200)
    def test_sojourn_time_at_least_service_time(self, arrival, service):
        assume(arrival < 0.999 * service)
        q = MM1Queue(arrival, service)
        assert q.mean_sojourn_time >= q.mean_service_time * (1 - 1e-12)

    @given(service=rates, factor=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=100)
    def test_latency_monotone_in_load(self, service, factor):
        lighter = MM1Queue(0.5 * factor * service, service)
        heavier = MM1Queue(factor * service, service)
        assert heavier.mean_sojourn_time >= lighter.mean_sojourn_time

    @given(arrival=rates, service=rates, capacity=st.integers(min_value=1, max_value=60))
    @settings(max_examples=150)
    def test_mm1k_probabilities_normalise(self, arrival, service, capacity):
        q = MM1KQueue(arrival, service, capacity)
        total = sum(q.probability_n_in_system(n) for n in range(capacity + 1))
        assert math.isclose(total, 1.0, rel_tol=1e-8)
        assert 0.0 <= q.blocking_probability <= 1.0
        assert q.effective_arrival_rate <= arrival + 1e-12


class TestMMCProperties:
    @given(arrival=rates, service=rates, servers=st.integers(min_value=1, max_value=32))
    @settings(max_examples=150)
    def test_probability_wait_in_unit_interval(self, arrival, service, servers):
        assume(arrival < 0.999 * service * servers)
        q = MMCQueue(arrival, service, servers)
        assert 0.0 <= q.probability_wait <= 1.0
        assert q.mean_sojourn_time >= 1.0 / service * (1 - 1e-12)

    @given(load=st.floats(min_value=0.01, max_value=50.0), servers=st.integers(1, 64))
    @settings(max_examples=150)
    def test_erlang_b_is_a_probability_and_decreases_with_servers(self, load, servers):
        b1 = erlang_b(servers, load)
        b2 = erlang_b(servers + 1, load)
        assert 0.0 <= b1 <= 1.0
        assert b2 <= b1 + 1e-12


class TestMG1Properties:
    @given(arrival=rates, mean_service=st.floats(min_value=1e-4, max_value=10.0))
    @settings(max_examples=150)
    def test_deterministic_never_worse_than_exponential(self, arrival, mean_service):
        assume(arrival * mean_service < 0.99)
        md1 = MG1Queue(arrival, Deterministic(mean_service))
        mm1 = MG1Queue(arrival, Exponential(mean_service))
        assert md1.mean_waiting_time <= mm1.mean_waiting_time + 1e-12

    @given(
        arrival=rates,
        mean_service=st.floats(min_value=1e-4, max_value=10.0),
        k=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=150)
    def test_erlang_between_deterministic_and_exponential(self, arrival, mean_service, k):
        assume(arrival * mean_service < 0.99)
        w_erlang = MG1Queue(arrival, Erlang(k, mean_service)).mean_waiting_time
        w_det = MG1Queue(arrival, Deterministic(mean_service)).mean_waiting_time
        w_exp = MG1Queue(arrival, Exponential(mean_service)).mean_waiting_time
        assert w_det - 1e-12 <= w_erlang <= w_exp + 1e-12

    @given(
        mean=st.floats(min_value=0.01, max_value=10.0),
        scv=st.floats(min_value=1.01, max_value=20.0),
    )
    @settings(max_examples=100)
    def test_hyperexponential_fit_preserves_moments(self, mean, scv):
        dist = HyperExponential.from_mean_and_scv(mean, scv)
        assert math.isclose(dist.mean, mean, rel_tol=1e-9)
        assert math.isclose(dist.scv, scv, rel_tol=1e-6)


class TestFiniteSourceProperties:
    @given(
        nominal=st.floats(min_value=1e-3, max_value=100.0),
        waiting=st.floats(min_value=0.0, max_value=1e4),
        population=st.integers(min_value=1, max_value=2048),
    )
    @settings(max_examples=200)
    def test_effective_rate_bounded(self, nominal, waiting, population):
        eff = effective_rate_correction(nominal, waiting, population)
        assert 0.0 <= eff <= nominal

    @given(
        population=st.integers(min_value=1, max_value=64),
        request=st.floats(min_value=1e-3, max_value=10.0),
        service=st.floats(min_value=1e-3, max_value=10.0),
    )
    @settings(max_examples=100)
    def test_machine_repairman_consistency(self, population, request, service):
        q = MachineRepairmanQueue(population, request, service)
        probs = q.state_probabilities()
        assert math.isclose(sum(probs), 1.0, rel_tol=1e-8)
        assert 0.0 <= q.mean_number_at_server <= population
        assert q.throughput <= service + 1e-12
        # Interactive response-time law: R >= service time is not guaranteed,
        # but R must be positive and the throughput bounded by N * λ_think.
        assert q.throughput <= population * request + 1e-9


class TestMVAProperties:
    @given(
        population=st.integers(min_value=0, max_value=64),
        think=st.floats(min_value=0.1, max_value=100.0),
        demand=st.floats(min_value=0.001, max_value=10.0),
    )
    @settings(max_examples=150)
    def test_queue_lengths_sum_to_population(self, population, think, demand):
        stations = [
            MVAStation("think", 1.0, think, is_delay=True),
            MVAStation("server", 1.0, demand),
        ]
        result = mean_value_analysis(stations, population)
        assert math.isclose(float(result.queue_lengths.sum()), population, rel_tol=1e-9, abs_tol=1e-9)
        assert result.throughput <= 1.0 / demand + 1e-9
        assert result.throughput <= population / think + 1e-9 if think > 0 else True
