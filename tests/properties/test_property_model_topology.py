"""Property-based tests for the topologies and the analytical model invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.presets import paper_evaluation_system
from repro.core.model import AnalyticalModel, ModelConfig
from repro.core.routing import outgoing_probability
from repro.core.traffic import compute_traffic_rates
from repro.network.models import BlockingNetworkModel, NonBlockingNetworkModel
from repro.network.switch import SwitchFabric
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.topology.fattree import FatTreeTopology, fat_tree_stages, fat_tree_switch_count
from repro.topology.linear_array import LinearArrayTopology

nodes = st.integers(min_value=1, max_value=4096)
ports = st.integers(min_value=4, max_value=128)


class TestFatTreeProperties:
    @given(n=nodes, pr=ports)
    @settings(max_examples=300)
    def test_capacity_covers_nodes(self, n, pr):
        """The chosen stage count must actually be able to connect N nodes."""
        d = fat_tree_stages(n, pr)
        capacity = pr * (pr / 2) ** (d - 1)
        assert capacity >= n
        if d > 1:
            smaller_capacity = pr * (pr / 2) ** (d - 2)
            assert smaller_capacity < n  # d is minimal

    @given(n=nodes, pr=ports)
    @settings(max_examples=300)
    def test_full_bisection_always(self, n, pr):
        topo = FatTreeTopology(n, pr)
        assert topo.full_bisection
        assert topo.bisection_width == math.ceil(n / 2)

    @given(n=nodes, pr=ports)
    @settings(max_examples=300)
    def test_switch_count_formula_consistency(self, n, pr):
        topo = FatTreeTopology(n, pr)
        assert topo.num_switches == fat_tree_switch_count(n, pr)
        assert topo.num_switches == sum(topo.switches_per_stage)
        assert topo.switch_traversals == 2 * topo.num_stages - 1

    @given(n=st.integers(2, 2000), pr=ports)
    @settings(max_examples=200)
    def test_more_nodes_never_fewer_switches(self, n, pr):
        assert fat_tree_switch_count(n, pr) >= fat_tree_switch_count(n - 1, pr)


class TestLinearArrayProperties:
    @given(n=nodes, pr=ports)
    @settings(max_examples=300)
    def test_chain_invariants(self, n, pr):
        topo = LinearArrayTopology(n, pr)
        assert topo.num_switches == math.ceil(n / pr)
        assert topo.bisection_width == 1
        assert topo.average_switch_hops <= topo.diameter_switch_hops + 1
        assert topo.blocked_node_factor == n / 2.0

    @given(n=st.integers(3, 4096), pr=ports)
    @settings(max_examples=200)
    def test_never_full_bisection_beyond_two_nodes(self, n, pr):
        assert not LinearArrayTopology(n, pr).full_bisection


class TestServiceModelProperties:
    techs = st.sampled_from([GIGABIT_ETHERNET, FAST_ETHERNET])

    @given(n=st.integers(2, 1024), pr=ports, m=st.floats(1.0, 1e6), tech=techs)
    @settings(max_examples=200)
    def test_blocking_at_least_as_slow(self, n, pr, m, tech):
        switch = SwitchFabric(ports=pr, latency_s=10e-6)
        blocking = BlockingNetworkModel(tech, switch, n)
        nonblocking = NonBlockingNetworkModel(tech, switch, n)
        assert blocking.service_time(m) >= nonblocking.transmission_time(m) - \
            nonblocking.switch.traversal_time(nonblocking.topology.switch_traversals)
        # Blocking time is non-negative and grows with the message size.
        assert blocking.blocking_time(m) >= 0.0

    @given(n=st.integers(1, 1024), m1=st.floats(1.0, 1e5), m2=st.floats(1.0, 1e5))
    @settings(max_examples=200)
    def test_service_time_monotone_in_message_size(self, n, m1, m2):
        model = NonBlockingNetworkModel(FAST_ETHERNET, SwitchFabric(24, 10e-6), n)
        low, high = sorted((m1, m2))
        assert model.service_time(low) <= model.service_time(high) + 1e-15


class TestRoutingAndTrafficProperties:
    @given(c=st.integers(1, 256), n0=st.integers(1, 256))
    @settings(max_examples=300)
    def test_probability_in_unit_interval(self, c, n0):
        p = outgoing_probability(c, n0)
        assert 0.0 <= p <= 1.0

    @given(c=st.integers(1, 128), n0=st.integers(1, 128), lam=st.floats(0.0, 100.0))
    @settings(max_examples=300)
    def test_flow_conservation(self, c, n0, lam):
        """Total external arrivals equal total ICN1 + ECN1-forward arrivals."""
        rates = compute_traffic_rates(c, n0, lam)
        generated_per_cluster = n0 * lam
        assert math.isclose(
            rates.icn1 + rates.ecn1_forward, generated_per_cluster, rel_tol=1e-9, abs_tol=1e-12
        )
        # The ICN2 carries exactly the remote traffic of all clusters.
        assert math.isclose(rates.icn2, c * rates.ecn1_forward, rel_tol=1e-9, abs_tol=1e-12)
        # ECN1 total is forward plus return.
        assert math.isclose(
            rates.ecn1, rates.ecn1_forward + rates.ecn1_return, rel_tol=1e-9, abs_tol=1e-12
        )


class TestModelProperties:
    cluster_counts = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256])

    @given(c=cluster_counts, m=st.sampled_from([256.0, 512.0, 1024.0, 2048.0]))
    @settings(max_examples=60, deadline=None)
    def test_latency_positive_and_bounded_by_components(self, c, m):
        system = paper_evaluation_system(c, GIGABIT_ETHERNET, FAST_ETHERNET)
        report = AnalyticalModel(system, ModelConfig(message_bytes=m)).evaluate()
        assert report.mean_latency_s > 0
        low = min(report.local_latency_s, report.remote_latency_s)
        high = max(report.local_latency_s, report.remote_latency_s)
        assert low - 1e-15 <= report.mean_latency_s <= high + 1e-15
        assert all(0.0 <= u < 1.0 for u in report.utilizations.values())
        assert 0.0 < report.effective_rate <= report.nominal_rate + 1e-15

    @given(c=cluster_counts)
    @settings(max_examples=30, deadline=None)
    def test_blocking_never_faster(self, c):
        system = paper_evaluation_system(c, GIGABIT_ETHERNET, FAST_ETHERNET)
        nb = AnalyticalModel(system, ModelConfig(architecture="non-blocking")).evaluate()
        b = AnalyticalModel(system, ModelConfig(architecture="blocking")).evaluate()
        assert b.mean_latency_s >= nb.mean_latency_s
