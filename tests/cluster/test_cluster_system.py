"""Unit tests for the HMSCS system model (processors, clusters, systems, presets)."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterSpec
from repro.cluster.presets import das2_like_system, llnl_like_system, paper_evaluation_system
from repro.cluster.processor import DEFAULT_PROCESSOR, ProcessorType
from repro.cluster.system import MultiClusterSystem
from repro.errors import ConfigurationError
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET, MYRINET


class TestProcessorType:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessorType("", 1.0)
        with pytest.raises(ConfigurationError):
            ProcessorType("x", 0.0)

    def test_scaled_rate(self):
        fast = ProcessorType("fast", relative_speed=2.0)
        assert fast.scaled_rate(0.25) == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            fast.scaled_rate(-1.0)

    def test_default_processor(self):
        assert DEFAULT_PROCESSOR.relative_speed == 1.0
        assert "reference" in str(DEFAULT_PROCESSOR)


class TestClusterSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec("", 4, GIGABIT_ETHERNET, FAST_ETHERNET)
        with pytest.raises(ConfigurationError):
            ClusterSpec("c", 0, GIGABIT_ETHERNET, FAST_ETHERNET)

    def test_with_processors(self):
        spec = ClusterSpec("c", 4, GIGABIT_ETHERNET, FAST_ETHERNET)
        bigger = spec.with_processors(32)
        assert bigger.num_processors == 32
        assert bigger.name == "c"

    def test_with_technologies(self):
        spec = ClusterSpec("c", 4, GIGABIT_ETHERNET, FAST_ETHERNET)
        swapped = spec.with_technologies(FAST_ETHERNET, GIGABIT_ETHERNET)
        assert swapped.icn_technology is FAST_ETHERNET
        assert swapped.ecn_technology is GIGABIT_ETHERNET

    def test_str(self):
        spec = ClusterSpec("mcr", 8, GIGABIT_ETHERNET, FAST_ETHERNET)
        assert "mcr" in str(spec)
        assert "gigabit-ethernet" in str(spec)


class TestMultiClusterSystem:
    def test_super_cluster_builder(self):
        system = MultiClusterSystem.super_cluster(
            num_clusters=4,
            processors_per_cluster=16,
            icn_technology=GIGABIT_ETHERNET,
            ecn_technology=FAST_ETHERNET,
        )
        assert system.num_clusters == 4
        assert system.total_processors == 64
        assert system.processors_per_cluster == 16
        assert system.is_super_cluster
        assert not system.is_cluster_of_clusters
        assert system.icn2_technology is FAST_ETHERNET

    def test_builder_validation(self):
        with pytest.raises(ConfigurationError):
            MultiClusterSystem.super_cluster(0, 4, GIGABIT_ETHERNET, FAST_ETHERNET)
        with pytest.raises(ConfigurationError):
            MultiClusterSystem.super_cluster(4, 0, GIGABIT_ETHERNET, FAST_ETHERNET)

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiClusterSystem(clusters=(), icn2_technology=FAST_ETHERNET)

    def test_duplicate_cluster_names_rejected(self):
        cluster = ClusterSpec("same", 4, GIGABIT_ETHERNET, FAST_ETHERNET)
        with pytest.raises(ConfigurationError):
            MultiClusterSystem(clusters=(cluster, cluster), icn2_technology=FAST_ETHERNET)

    def test_network_heterogeneity_detection(self):
        homo = MultiClusterSystem.super_cluster(2, 4, FAST_ETHERNET, FAST_ETHERNET)
        hetero = MultiClusterSystem.super_cluster(2, 4, GIGABIT_ETHERNET, FAST_ETHERNET)
        assert not homo.is_network_heterogeneous
        assert hetero.is_network_heterogeneous
        assert len(hetero.network_technologies) == 2

    def test_unequal_sizes_is_cluster_of_clusters(self):
        system = MultiClusterSystem.from_cluster_sizes(
            sizes=[8, 16],
            icn_technologies=[GIGABIT_ETHERNET, GIGABIT_ETHERNET],
            ecn_technologies=[FAST_ETHERNET, FAST_ETHERNET],
            icn2_technology=FAST_ETHERNET,
        )
        assert system.is_cluster_of_clusters
        assert not system.has_equal_cluster_sizes
        with pytest.raises(ConfigurationError):
            _ = system.processors_per_cluster

    def test_from_cluster_sizes_validation(self):
        with pytest.raises(ConfigurationError):
            MultiClusterSystem.from_cluster_sizes(
                sizes=[],
                icn_technologies=[],
                ecn_technologies=[],
                icn2_technology=FAST_ETHERNET,
            )
        with pytest.raises(ConfigurationError):
            MultiClusterSystem.from_cluster_sizes(
                sizes=[4, 4],
                icn_technologies=[GIGABIT_ETHERNET],
                ecn_technologies=[FAST_ETHERNET, FAST_ETHERNET],
                icn2_technology=FAST_ETHERNET,
            )

    def test_validate_super_cluster_assumptions(self):
        good = MultiClusterSystem.super_cluster(4, 8, GIGABIT_ETHERNET, FAST_ETHERNET)
        good.validate_super_cluster_assumptions()  # no exception

        uneven = MultiClusterSystem.from_cluster_sizes(
            sizes=[4, 8],
            icn_technologies=[GIGABIT_ETHERNET, GIGABIT_ETHERNET],
            ecn_technologies=[FAST_ETHERNET, FAST_ETHERNET],
            icn2_technology=FAST_ETHERNET,
        )
        with pytest.raises(ConfigurationError):
            uneven.validate_super_cluster_assumptions()

        mixed_icn = MultiClusterSystem.from_cluster_sizes(
            sizes=[4, 4],
            icn_technologies=[GIGABIT_ETHERNET, MYRINET],
            ecn_technologies=[FAST_ETHERNET, FAST_ETHERNET],
            icn2_technology=FAST_ETHERNET,
        )
        with pytest.raises(ConfigurationError):
            mixed_icn.validate_super_cluster_assumptions()

        mixed_proc = MultiClusterSystem.from_cluster_sizes(
            sizes=[4, 4],
            icn_technologies=[GIGABIT_ETHERNET, GIGABIT_ETHERNET],
            ecn_technologies=[FAST_ETHERNET, FAST_ETHERNET],
            icn2_technology=FAST_ETHERNET,
            processor_types=[ProcessorType("a"), ProcessorType("b")],
        )
        with pytest.raises(ConfigurationError):
            mixed_proc.validate_super_cluster_assumptions()

    def test_rescaled_preserves_total(self):
        system = MultiClusterSystem.super_cluster(4, 64, GIGABIT_ETHERNET, FAST_ETHERNET)
        rescaled = system.rescaled(16)
        assert rescaled.num_clusters == 16
        assert rescaled.total_processors == 256
        assert rescaled.processors_per_cluster == 16
        assert rescaled.clusters[0].icn_technology is GIGABIT_ETHERNET

    def test_rescaled_requires_divisibility(self):
        system = MultiClusterSystem.super_cluster(4, 64, GIGABIT_ETHERNET, FAST_ETHERNET)
        with pytest.raises(ConfigurationError):
            system.rescaled(7)

    def test_describe_and_str(self):
        system = MultiClusterSystem.super_cluster(2, 4, GIGABIT_ETHERNET, FAST_ETHERNET)
        text = system.describe()
        assert "2 clusters" in text
        assert "cluster-0" in text
        assert "C=2" in str(system)


class TestPresets:
    def test_paper_evaluation_system(self):
        system = paper_evaluation_system(16, GIGABIT_ETHERNET, FAST_ETHERNET)
        assert system.total_processors == 256
        assert system.num_clusters == 16
        assert system.processors_per_cluster == 16
        assert system.is_super_cluster
        system.validate_super_cluster_assumptions()

    def test_paper_system_requires_divisibility(self):
        with pytest.raises(ValueError):
            paper_evaluation_system(3, GIGABIT_ETHERNET, FAST_ETHERNET)

    def test_all_paper_cluster_counts_valid(self):
        for c in (1, 2, 4, 8, 16, 32, 64, 128, 256):
            system = paper_evaluation_system(c, GIGABIT_ETHERNET, FAST_ETHERNET)
            assert system.total_processors == 256

    def test_das2_like(self):
        system = das2_like_system()
        assert system.is_super_cluster
        assert system.num_clusters == 5
        assert system.total_processors == 320

    def test_llnl_like(self):
        system = llnl_like_system()
        assert system.is_cluster_of_clusters
        assert system.num_clusters == 4
        assert {c.name for c in system.clusters} == {"mcr", "alc", "thunder", "pvc"}
        assert system.total_processors == 128 + 96 + 64 + 16
