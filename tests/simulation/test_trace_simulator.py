"""Unit tests for the open-loop, trace-driven simulator."""

from __future__ import annotations

import pytest

from repro.cluster.presets import paper_evaluation_system
from repro.errors import ConfigurationError
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.simulation.trace_simulator import (
    TraceDrivenSimulator,
    TraceSimulationConfig,
    TraceSimulationResult,
)
from repro.workload.arrivals import PoissonArrivals
from repro.workload.destinations import LocalizedDestinations
from repro.workload.messages import FixedMessageSize, TraceEntry, WorkloadTrace, generate_trace


@pytest.fixture
def small_system():
    return paper_evaluation_system(4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32)


@pytest.fixture
def small_trace():
    return generate_trace([8, 8, 8, 8], num_messages=800,
                          arrival_process=PoissonArrivals(rate=0.25), seed=5)


class TestTraceSimulationConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceSimulationConfig(batch_count=1)


class TestTraceDrivenSimulator:
    def test_replays_all_messages(self, small_system, small_trace):
        result = TraceDrivenSimulator(small_system, small_trace).run()
        assert isinstance(result, TraceSimulationResult)
        assert result.completed_messages == len(small_trace)
        assert result.injected_messages == len(small_trace)
        assert result.mean_latency_s > 0
        assert result.mean_latency_ms == pytest.approx(result.mean_latency_s * 1e3)
        assert result.makespan_s >= small_trace.duration
        assert 0.0 <= result.remote_fraction <= 1.0
        assert "icn2" in result.utilizations

    def test_reproducible(self, small_system, small_trace):
        a = TraceDrivenSimulator(small_system, small_trace,
                                 TraceSimulationConfig(seed=3)).run()
        b = TraceDrivenSimulator(small_system, small_trace,
                                 TraceSimulationConfig(seed=3)).run()
        assert a.mean_latency_s == pytest.approx(b.mean_latency_s, rel=1e-12)

    def test_open_loop_close_to_closed_loop_at_light_load(self, small_system, small_trace):
        """At the paper's nearly idle load, open- and closed-loop latencies agree."""
        from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig

        open_loop = TraceDrivenSimulator(small_system, small_trace).run()
        closed_loop = MultiClusterSimulator(
            small_system, SimulationConfig(num_messages=800, seed=5)
        ).run()
        assert open_loop.mean_latency_s == pytest.approx(closed_loop.mean_latency_s, rel=0.15)

    def test_blocking_architecture_slower(self, small_system, small_trace):
        nb = TraceDrivenSimulator(
            small_system, small_trace, TraceSimulationConfig(architecture="non-blocking")
        ).run()
        b = TraceDrivenSimulator(
            small_system, small_trace, TraceSimulationConfig(architecture="blocking")
        ).run()
        assert b.mean_latency_s > nb.mean_latency_s

    def test_local_only_trace_never_touches_icn2(self, small_system):
        trace = generate_trace(
            [8, 8, 8, 8],
            num_messages=300,
            destination_policy=LocalizedDestinations([8, 8, 8, 8], locality=1.0),
            size_model=FixedMessageSize(512),
            seed=9,
        )
        simulator = TraceDrivenSimulator(small_system, trace)
        result = simulator.run()
        assert result.remote_fraction == 0.0
        assert result.utilizations["icn2"] == 0.0
        assert simulator.icn2.served == 0

    def test_empty_trace_rejected(self, small_system):
        with pytest.raises(ConfigurationError):
            TraceDrivenSimulator(small_system, WorkloadTrace(entries=[]))

    def test_trace_with_invalid_address_rejected(self, small_system):
        bad = WorkloadTrace(entries=[TraceEntry(0.0, (0, 0), (9, 0), 512.0)])
        with pytest.raises(ConfigurationError):
            TraceDrivenSimulator(small_system, bad)

    def test_deterministic_service_option(self, small_system, small_trace):
        result = TraceDrivenSimulator(
            small_system, small_trace, TraceSimulationConfig(exponential_service=False)
        ).run()
        assert result.mean_latency_s > 0
