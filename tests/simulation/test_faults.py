"""Tests for the deterministic fault-injection layer (`repro.simulation.faults`)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.des.core import Environment
from repro.des.rng import RandomStreams
from repro.errors import ConfigurationError
from repro.queueing.distributions import Deterministic
from repro.simulation.faults import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultyServiceCenterSim,
)
from repro.simulation.message import Message
from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig


def constant_schedule(ttf: float = 10.0, repair: float = 2.0) -> FaultSchedule:
    """Schedule with constant draws: down intervals [10,12), [22,24), ..."""
    return FaultSchedule(lambda: ttf, lambda: repair)


# ---------------------------------------------------------------- FaultSpec


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec(mtbf_s=100.0, mttr_s=5.0)
        assert spec.failure_distribution == "exponential"
        assert spec.repair_distribution == "exponential"
        assert spec.targets == "links"
        assert spec.policy == "stall"
        assert spec.on_links and not spec.on_nodes

    def test_target_flags(self):
        both = FaultSpec(mtbf_s=1.0, mttr_s=1.0, targets="both")
        assert both.on_links and both.on_nodes
        nodes = FaultSpec(mtbf_s=1.0, mttr_s=1.0, targets="nodes")
        assert nodes.on_nodes and not nodes.on_links

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mtbf_s": 0.0, "mttr_s": 1.0},
            {"mtbf_s": 1.0, "mttr_s": -2.0},
            {"mtbf_s": 1.0, "mttr_s": 1.0, "failure_distribution": "pareto"},
            {"mtbf_s": 1.0, "mttr_s": 1.0, "repair_distribution": "uniform"},
            {"mtbf_s": 1.0, "mttr_s": 1.0, "failure_shape": 0.0},
            {"mtbf_s": 1.0, "mttr_s": 1.0, "repair_shape": -1.0},
            {"mtbf_s": 1.0, "mttr_s": 1.0, "targets": "switches"},
            {"mtbf_s": 1.0, "mttr_s": 1.0, "policy": "retry"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSpec(**kwargs)

    def test_json_round_trip(self):
        spec = FaultSpec(
            mtbf_s=30.0,
            mttr_s=3.0,
            failure_distribution="weibull",
            failure_shape=1.5,
            repair_distribution="deterministic",
            targets="both",
            policy="drop",
        )
        assert FaultSpec.from_json(spec.to_json()) == spec

    def test_from_json_passes_instances_through(self):
        spec = FaultSpec(mtbf_s=1.0, mttr_s=1.0)
        assert FaultSpec.from_json(spec) is spec

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown failures field"):
            FaultSpec.from_json({"mtbf_s": 1.0, "mttr_s": 1.0, "mtbf": 2.0})

    def test_from_json_requires_means(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            FaultSpec.from_json({"mtbf_s": 1.0})

    def test_from_json_rejects_non_mapping(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            FaultSpec.from_json([1.0, 2.0])


# ------------------------------------------------------------ FaultSchedule


class TestFaultSchedule:
    """Deterministic vectors: down intervals [10,12), [22,24), ..."""

    def test_is_down(self):
        schedule = constant_schedule()
        assert not schedule.is_down(5.0)
        assert schedule.is_down(11.0)
        assert not schedule.is_down(12.0)  # repair instant is up
        assert schedule.is_down(23.0)

    def test_next_up(self):
        schedule = constant_schedule()
        assert schedule.next_up(5.0) == 5.0
        assert schedule.next_up(11.0) == 12.0
        assert schedule.next_up(22.0) == 24.0

    def test_finish_outside_outage(self):
        schedule = constant_schedule()
        assert schedule.finish(0.0, 5.0) == 5.0
        # Work ending exactly at the failure instant is unaffected.
        assert schedule.finish(0.0, 10.0) == 10.0

    def test_finish_stretches_over_outage(self):
        schedule = constant_schedule()
        assert schedule.finish(0.0, 11.0) == 13.0

    def test_finish_started_inside_outage(self):
        schedule = constant_schedule()
        assert schedule.finish(11.0, 1.0) == 13.0

    def test_finish_spanning_two_outages(self):
        schedule = constant_schedule()
        # 22s of work: +2 at [10,12), +2 at [22,24) -> done at 26.
        assert schedule.finish(0.0, 22.0) == 26.0

    def test_finish_rejects_negative_work(self):
        with pytest.raises(ValueError, match="non-negative"):
            constant_schedule().finish(0.0, -1.0)

    def test_downtime_and_availability(self):
        schedule = constant_schedule()
        assert schedule.downtime(24.0) == pytest.approx(4.0)
        assert schedule.downtime(11.0) == pytest.approx(1.0)  # partial outage
        assert schedule.availability(24.0) == pytest.approx(1.0 - 4.0 / 24.0)
        assert schedule.availability(0.0) == 1.0
        assert schedule.downtime(-5.0) == 0.0

    def test_queries_are_append_only(self):
        """Query order never changes the timeline (post-run queries are safe)."""
        a = constant_schedule()
        b = constant_schedule()
        a.is_down(50.0)  # force far generation first
        assert [a.is_down(t) for t in (5.0, 11.0, 23.0)] == [
            b.is_down(t) for t in (5.0, 11.0, 23.0)
        ]
        assert a.downtime(50.0) == b.downtime(50.0)


# ----------------------------------------------------- FaultyServiceCenterSim


def make_center(env, streams, policy, schedule, service=1.0):
    return FaultyServiceCenterSim(
        env,
        "icn1",
        Deterministic(service),
        streams.stream("svc"),
        schedule=schedule,
        policy=policy,
    )


class TestFaultyServiceCenter:
    def test_rejects_unknown_policy(self, streams):
        env = Environment()
        with pytest.raises(ConfigurationError, match="policy"):
            make_center(env, streams, "reroute", constant_schedule())

    def test_stall_stretches_service_over_outage(self, streams):
        env = Environment()
        center = make_center(env, streams, "stall", constant_schedule(), service=11.0)
        event = center.begin(Message(0, (0, 0), (1, 0), 1024, 0.0))
        # 11s of work hits the [10,12) outage: departs at 13, not 11.
        assert event.at == 13.0
        assert center._next_free == 13.0
        assert center.dropped == 0

    def test_stall_queues_in_arrival_order(self, streams):
        env = Environment()
        center = make_center(env, streams, "stall", constant_schedule(), service=6.0)
        first = center.begin(Message(0, (0, 0), (1, 0), 1024, 0.0))
        second = center.begin(Message(1, (0, 0), (1, 0), 1024, 0.0))
        assert first.at == 6.0
        # Second message serves [6,12)+outage -> finish(6, 6) == 14.
        assert second.at == 14.0

    def test_drop_loses_messages_during_outage(self, streams):
        env = Environment(initial_time=11.0)
        center = make_center(env, streams, "drop", constant_schedule())
        assert center.try_begin(Message(0, (0, 0), (1, 0), 1024, 11.0)) is None
        assert center.dropped == 1

    def test_drop_admits_while_up(self, streams):
        env = Environment(initial_time=5.0)
        center = make_center(env, streams, "drop", constant_schedule())
        event = center.try_begin(Message(0, (0, 0), (1, 0), 1024, 5.0))
        assert event is not None and event.at == 6.0
        assert center.dropped == 0


# ------------------------------------------------------------- FaultInjector


class TestFaultInjector:
    def test_schedules_are_memoised(self, streams):
        injector = FaultInjector(FaultSpec(mtbf_s=10.0, mttr_s=1.0), streams)
        assert injector.link_schedule("icn1") is injector.link_schedule("icn1")
        assert injector.node_schedule(0, 3) is injector.node_schedule(0, 3)
        assert injector.link_schedule("icn1") is not injector.link_schedule("icn2")

    def test_monitored_names(self, streams):
        injector = FaultInjector(FaultSpec(mtbf_s=10.0, mttr_s=1.0), streams)
        injector.link_schedule("icn1")
        injector.node_schedule(0, 3)
        names = {name for name, _ in injector.monitored()}
        assert names == {"icn1", "node[0][3]"}

    def test_availability_report(self, streams):
        injector = FaultInjector(FaultSpec(mtbf_s=10.0, mttr_s=1.0), streams)
        injector.link_schedule("icn1")
        report = injector.availability(100.0)
        assert set(report) == {"icn1"}
        assert 0.0 <= report["icn1"] <= 1.0

    def test_schedules_are_seed_deterministic(self):
        spec = FaultSpec(mtbf_s=10.0, mttr_s=1.0)
        a = FaultInjector(spec, RandomStreams(seed=7)).link_schedule("icn1")
        b = FaultInjector(spec, RandomStreams(seed=7)).link_schedule("icn1")
        assert [a.is_down(t) for t in range(0, 200, 3)] == [
            b.is_down(t) for t in range(0, 200, 3)
        ]

    def test_weibull_sampler_preserves_mean(self, streams):
        spec = FaultSpec(
            mtbf_s=10.0, mttr_s=1.0, failure_distribution="weibull", failure_shape=1.5
        )
        injector = FaultInjector(spec, streams)
        schedule = injector.link_schedule("icn1")
        schedule._ensure(20000.0)
        ups = [
            start - (schedule._ends[i - 1] if i else 0.0)
            for i, start in enumerate(schedule._starts)
        ]
        mean = sum(ups) / len(ups)
        assert mean == pytest.approx(10.0, rel=0.15)


# ------------------------------------------------------- simulator integration


FAULTY_LINKS = FaultSpec(mtbf_s=5.0, mttr_s=1.0, targets="links", policy="stall")


class TestSimulatorFaults:
    @pytest.fixture
    def faulty_config(self):
        return SimulationConfig(
            architecture="non-blocking",
            message_bytes=1024,
            generation_rate=0.25,
            num_messages=600,
            seed=11,
            failures=FAULTY_LINKS,
        )

    def test_failures_block_coerced_from_json(self):
        config = SimulationConfig(
            architecture="non-blocking",
            message_bytes=1024,
            generation_rate=0.25,
            num_messages=10,
            seed=1,
            failures={"mtbf_s": 5.0, "mttr_s": 1.0},
        )
        assert isinstance(config.failures, FaultSpec)

    def test_faulty_run_reports_availability(self, small_case1_system, faulty_config):
        result = MultiClusterSimulator(small_case1_system, faulty_config).run()
        assert result.availability  # non-empty dict
        assert all(0.0 <= value <= 1.0 for value in result.availability.values())
        assert 0.0 < result.mean_availability < 1.0
        out = result.as_dict()
        assert {"availability", "throughput_msg_s", "dropped_messages"} <= set(out)

    def test_fault_free_run_omits_fault_columns(self, small_case1_system, faulty_config):
        clean = replace(faulty_config, failures=None)
        result = MultiClusterSimulator(small_case1_system, clean).run()
        assert result.availability is None
        assert result.mean_availability is None
        assert result.dropped_messages == 0
        out = result.as_dict()
        assert "availability" not in out and "dropped_messages" not in out

    def test_faulty_run_is_seed_deterministic(self, small_case1_system, faulty_config):
        a = MultiClusterSimulator(small_case1_system, faulty_config).run()
        b = MultiClusterSimulator(small_case1_system, faulty_config).run()
        assert a.as_dict() == b.as_dict()
        assert a.availability == b.availability

    def test_drop_policy_counts_losses(self, small_case1_system, faulty_config):
        lossy = replace(
            faulty_config,
            failures=FaultSpec(mtbf_s=5.0, mttr_s=1.0, targets="links", policy="drop"),
        )
        result = MultiClusterSimulator(small_case1_system, lossy).run()
        assert result.dropped_messages > 0
        assert result.as_dict()["dropped_messages"] == float(result.dropped_messages)

    def test_node_churn_runs(self, small_case1_system, faulty_config):
        churn = replace(
            faulty_config,
            failures=FaultSpec(mtbf_s=10.0, mttr_s=1.0, targets="nodes", policy="stall"),
        )
        result = MultiClusterSimulator(small_case1_system, churn).run()
        assert result.availability
        assert any(name.startswith("node[") for name in result.availability)

    def test_stall_increases_mean_latency(self, small_case1_system, faulty_config):
        clean = replace(faulty_config, failures=None)
        faulty = MultiClusterSimulator(small_case1_system, faulty_config).run()
        baseline = MultiClusterSimulator(small_case1_system, clean).run()
        assert faulty.mean_latency_s > baseline.mean_latency_s
