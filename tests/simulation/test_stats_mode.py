"""End-to-end tests of the ``stats_mode`` knob on the validation simulator.

Two contracts, both acceptance criteria of the streaming observation layer:

* **parity** — the same simulation run in ``array`` and ``online`` mode
  produces identical event sequences (the sinks only observe), so count /
  min / max / simulated time agree exactly and mean / std / CI agree to
  within 1e-9 relative;
* **bounded memory** — under a hard ``RLIMIT_AS`` address-space cap the
  array sink's run length has a ceiling (it retains every observation)
  while the online sink survives at least 10x that length under the same
  cap (subprocess test via ``benchmarks/smoke_memory.py``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.cluster.presets import paper_evaluation_system
from repro.errors import ConfigurationError
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.simulation.runner import run_message_trace_task, run_simulation_task
from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig

PARITY_REL = 1e-9


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(b), 1e-300)


def _system():
    return paper_evaluation_system(
        4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32
    )


def _run(mode: str, messages: int = 4_000, seed: int = 11):
    config = SimulationConfig(num_messages=messages, seed=seed, stats_mode=mode)
    return MultiClusterSimulator(_system(), config).run()


class TestConfigKnob:
    def test_default_is_array(self):
        assert SimulationConfig().stats_mode == "array"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="stats_mode"):
            SimulationConfig(stats_mode="rolling")

    def test_result_carries_mode(self):
        assert _run("array", messages=300).stats_mode == "array"
        assert _run("online", messages=300).stats_mode == "online"


class TestArrayOnlineParity:
    """Same seed, same system → the sinks observe the identical stream."""

    @pytest.fixture(scope="class")
    def pair(self):
        return _run("array"), _run("online")

    def test_counts_and_time_exact(self, pair):
        arr, onl = pair
        assert onl.measured_messages == arr.measured_messages
        assert onl.completed_messages == arr.completed_messages
        assert onl.remote_fraction == arr.remote_fraction
        # The event sequence is untouched by the sink choice.
        assert onl.simulated_time_s.hex() == arr.simulated_time_s.hex()
        assert onl.utilizations == arr.utilizations

    def test_extrema_exact(self, pair):
        arr, onl = pair
        assert onl.latency_summary["count"] == arr.latency_summary["count"]
        assert onl.latency_summary["min"].hex() == arr.latency_summary["min"].hex()
        assert onl.latency_summary["max"].hex() == arr.latency_summary["max"].hex()

    def test_means_within_1e9_relative(self, pair):
        arr, onl = pair
        assert _rel(onl.mean_latency_s, arr.mean_latency_s) < PARITY_REL
        assert _rel(onl.mean_local_latency_s, arr.mean_local_latency_s) < PARITY_REL
        assert _rel(onl.mean_remote_latency_s, arr.mean_remote_latency_s) < PARITY_REL
        assert _rel(onl.latency_summary["std"], arr.latency_summary["std"]) < PARITY_REL

    def test_confidence_interval_within_1e9_relative(self, pair):
        arr, onl = pair
        assert arr.confidence_interval is not None
        assert onl.confidence_interval is not None
        assert _rel(onl.confidence_interval.mean, arr.confidence_interval.mean) < PARITY_REL
        assert _rel(
            onl.confidence_interval.half_width, arr.confidence_interval.half_width
        ) < PARITY_REL

    def test_percentiles_close(self, pair):
        arr, onl = pair
        for key in ("p50", "p95", "p99"):
            # Histogram-resolved, so approximate — but the bins are fine
            # (range/4096) and the estimate is clamped to the exact extrema.
            assert onl.latency_summary[key] == pytest.approx(
                arr.latency_summary[key], rel=0.05
            )

    def test_short_run_skips_interval_in_both_modes(self):
        # Below batch_count there is no CI; neither mode may crash.
        arr = _run("array", messages=10)
        onl = _run("online", messages=10)
        assert arr.confidence_interval is None
        assert onl.confidence_interval is None
        assert _rel(onl.mean_latency_s, arr.mean_latency_s) < PARITY_REL


class TestTaskLayer:
    def test_simulation_task_accepts_online(self):
        config = SimulationConfig(num_messages=300, seed=3, stats_mode="online")
        result = run_simulation_task(_system(), config)
        assert result.stats_mode == "online"
        assert result.measured_messages > 0

    def test_trace_task_rows_identical_in_online_mode(self):
        """The streaming trace sink yields the array path's rows exactly."""
        arr = run_message_trace_task(
            _system(), SimulationConfig(num_messages=300, seed=3)
        )
        onl = run_message_trace_task(
            _system(), SimulationConfig(num_messages=300, seed=3, stats_mode="online")
        )
        assert onl == arr


@pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="RLIMIT_AS + /proc/self/status are Linux-specific",
)
class TestMemoryCap:
    """The headline claim: online mode decouples run length from RSS.

    Under one fixed address-space cap (post-import footprint + 48 MiB) the
    array sink cannot finish 200k messages, while the online sink finishes
    1M — 10x the array ceiling established by the 100k success case.
    """

    SLACK_MB = "48"

    @staticmethod
    def _smoke(mode: str, messages: int, timeout: float = 300.0):
        script = os.path.join(
            os.path.dirname(__file__), "..", "..", "benchmarks", "smoke_memory.py"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(script), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, script, "--mode", mode, "--messages", str(messages),
             "--slack-mb", TestMemoryCap.SLACK_MB],
            capture_output=True, text=True, timeout=timeout, env=env,
        )
        payload = json.loads(proc.stdout) if proc.stdout.strip() else None
        return proc.returncode, payload

    def test_array_mode_has_a_ceiling_under_the_cap(self):
        code, payload = self._smoke("array", 200_000)
        assert code == 9, f"expected OOM exit 9, got {code}: {payload}"
        assert payload["error"] == "MemoryError"

    def test_array_mode_fits_at_its_ceiling(self):
        code, payload = self._smoke("array", 100_000)
        assert code == 0, f"array mode should fit 100k under the cap: {payload}"
        assert payload["ok"] is True

    def test_online_mode_survives_10x_under_the_same_cap(self):
        code, payload = self._smoke("online", 1_000_000)
        assert code == 0, f"online mode must survive 1M messages: {payload}"
        assert payload["ok"] is True
        assert payload["measured_messages"] == 900_000
