"""Unit and integration tests for the validation simulator."""

from __future__ import annotations

import pytest

from repro.cluster.presets import llnl_like_system, paper_evaluation_system
from repro.core.model import ModelConfig
from repro.des.core import Environment
from repro.des.rng import RandomStreams
from repro.errors import ConfigurationError, SimulationError
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.queueing.distributions import Deterministic, Exponential
from repro.simulation.components import LatencySink, ServiceCenterSim
from repro.simulation.message import Message
from repro.parallel import spawn_seeds
from repro.simulation.runner import run_replications, validate_against_analysis
from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig
from repro.workload.destinations import LocalizedDestinations


class TestMessage:
    def test_is_remote(self):
        local = Message(0, (1, 2), (1, 3), 1024, 0.0)
        remote = Message(1, (1, 2), (2, 0), 1024, 0.0)
        assert not local.is_remote
        assert remote.is_remote

    def test_latency_requires_completion(self):
        message = Message(0, (0, 0), (0, 1), 1024, created_at=1.0)
        with pytest.raises(ValueError):
            _ = message.latency
        message.completed_at = 3.5
        assert message.latency == pytest.approx(2.5)

    def test_repr(self):
        message = Message(7, (0, 0), (1, 1), 512, 0.0)
        assert "#7" in repr(message)
        assert "pending" in repr(message)


class TestServiceCenterSim:
    def test_serves_messages_fifo_and_tracks_stats(self):
        env = Environment()
        rng = RandomStreams(1).stream("svc")
        center = ServiceCenterSim(env, "icn1[0]", Deterministic(2.0), rng)
        done = []

        def sender(env, center, ident):
            message = Message(ident, (0, 0), (0, 1), 100, env.now)
            yield from center.serve(message)
            message.completed_at = env.now
            done.append((ident, env.now, message.path))

        for i in range(3):
            env.process(sender(env, center, i))
        env.run()
        assert [d[0] for d in done] == [0, 1, 2]
        assert [d[1] for d in done] == [2.0, 4.0, 6.0]
        assert all(d[2] == ["icn1[0]"] for d in done)
        assert center.served == 3
        assert center.busy_time == pytest.approx(6.0)
        assert center.utilization() == pytest.approx(1.0)
        assert center.mean_occupancy() == pytest.approx(2.0)

    def test_utilization_before_time_advances(self):
        env = Environment()
        center = ServiceCenterSim(env, "x", Exponential(1.0), RandomStreams(1).stream("x"))
        assert center.utilization() == 0.0


class TestLatencySink:
    def test_done_event_after_target(self):
        env = Environment()
        sink = LatencySink(env, target_messages=2)
        for i in range(2):
            message = Message(i, (0, 0), (0, 1), 10, created_at=0.0)
            message.completed_at = float(i + 1)
            sink.record(message)
        assert sink.done.triggered
        assert sink.completed == 2
        assert sink.measured == 2

    def test_warmup_messages_excluded(self):
        env = Environment()
        sink = LatencySink(env, target_messages=10, warmup_messages=4)
        for i in range(10):
            message = Message(i, (0, 0), (1, 0), 10, created_at=0.0)
            message.completed_at = 1.0
            sink.record(message)
        assert sink.completed == 10
        assert sink.measured == 6

    def test_recording_incomplete_message_rejected(self):
        env = Environment()
        sink = LatencySink(env, target_messages=5)
        with pytest.raises(SimulationError):
            sink.record(Message(0, (0, 0), (0, 1), 10, 0.0))

    def test_validation(self):
        env = Environment()
        with pytest.raises(SimulationError):
            LatencySink(env, target_messages=0)
        with pytest.raises(SimulationError):
            LatencySink(env, target_messages=5, warmup_messages=5)


class TestSimulationConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(message_bytes=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(generation_rate=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_messages=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(warmup_fraction=1.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(batch_count=1)


class TestMultiClusterSimulator:
    @pytest.fixture
    def small_config(self) -> SimulationConfig:
        return SimulationConfig(
            architecture="non-blocking",
            message_bytes=1024,
            generation_rate=0.25,
            num_messages=600,
            seed=11,
        )

    def test_runs_and_reports(self, small_case1_system, small_config):
        result = MultiClusterSimulator(small_case1_system, small_config).run()
        assert result.measured_messages > 0
        assert result.completed_messages >= small_config.num_messages
        assert result.mean_latency_s > 0
        assert result.mean_latency_ms == pytest.approx(result.mean_latency_s * 1e3)
        assert result.simulated_time_s > 0
        assert 0.0 <= result.remote_fraction <= 1.0
        assert result.confidence_interval is not None
        assert "mean_latency_ms" in result.as_dict()

    def test_reproducible_with_same_seed(self, small_case1_system, small_config):
        a = MultiClusterSimulator(small_case1_system, small_config).run()
        b = MultiClusterSimulator(small_case1_system, small_config).run()
        assert a.mean_latency_s == pytest.approx(b.mean_latency_s, rel=1e-12)

    def test_different_seed_differs(self, small_case1_system, small_config):
        from dataclasses import replace

        a = MultiClusterSimulator(small_case1_system, small_config).run()
        b = MultiClusterSimulator(small_case1_system, replace(small_config, seed=99)).run()
        assert a.mean_latency_s != b.mean_latency_s

    def test_remote_fraction_matches_equation_8(self, small_case1_system, small_config):
        result = MultiClusterSimulator(small_case1_system, small_config).run()
        # C = 4, N0 = 8: P = 24/31.
        assert result.remote_fraction == pytest.approx(24.0 / 31.0, abs=0.06)

    def test_per_center_utilizations_present(self, small_case1_system, small_config):
        result = MultiClusterSimulator(small_case1_system, small_config).run()
        assert "icn2" in result.utilizations
        assert sum(1 for name in result.utilizations if name.startswith("icn1")) == 4
        assert sum(1 for name in result.utilizations if name.startswith("ecn1")) == 4
        assert all(0.0 <= u <= 1.0 for u in result.utilizations.values())

    def test_message_paths_follow_routing(self, small_case1_system, small_config):
        simulator = MultiClusterSimulator(small_case1_system, small_config)
        simulator.run()
        for message in simulator.sink.messages:
            if message.is_remote:
                assert len(message.path) == 3
                assert message.path[0] == f"ecn1[{message.source[0]}]"
                assert message.path[1] == "icn2"
                assert message.path[2] == f"ecn1[{message.destination[0]}]"
            else:
                assert message.path == [f"icn1[{message.source[0]}]"]

    def test_blocking_architecture_slower(self, small_case1_system):
        nb_config = SimulationConfig(architecture="non-blocking", message_bytes=1024,
                                     num_messages=500, seed=3)
        b_config = SimulationConfig(architecture="blocking", message_bytes=1024,
                                    num_messages=500, seed=3)
        nb = MultiClusterSimulator(small_case1_system, nb_config).run()
        b = MultiClusterSimulator(small_case1_system, b_config).run()
        assert b.mean_latency_s > nb.mean_latency_s

    def test_localized_destination_policy(self, small_case1_system):
        config = SimulationConfig(num_messages=400, seed=5)
        policy = LocalizedDestinations([8, 8, 8, 8], locality=1.0)
        result = MultiClusterSimulator(small_case1_system, config, policy).run()
        assert result.remote_fraction == 0.0

    def test_cluster_of_clusters_system_supported(self):
        config = SimulationConfig(num_messages=400, seed=9)
        result = MultiClusterSimulator(llnl_like_system(), config).run()
        assert result.mean_latency_s > 0

    def test_single_node_system_rejected(self):
        system = paper_evaluation_system(1, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=1)
        with pytest.raises(ConfigurationError):
            MultiClusterSimulator(system, SimulationConfig(num_messages=10))


class TestRunnerAndValidation:
    def test_run_replications_aggregates(self, small_case1_system):
        config = SimulationConfig(num_messages=400, seed=21)
        result = run_replications(small_case1_system, config, replications=3)
        assert result.replications == 3
        assert len(result.per_replication) == 3
        assert result.latency_interval is not None
        # Seeds are spawned from the master seed via SeedSequence (not the
        # correlated ``seed + i`` scheme): distinct, deterministic, and
        # decorrelated from adjacent master seeds.
        seeds = [r.seed for r in result.per_replication]
        assert seeds == spawn_seeds(21, 3)
        assert len(set(seeds)) == 3
        assert not set(seeds) & set(spawn_seeds(22, 3))

    def test_run_replications_validation(self, small_case1_system):
        with pytest.raises(ConfigurationError):
            run_replications(small_case1_system, SimulationConfig(), replications=0)

    def test_validate_against_analysis_agreement(self, small_case1_system):
        """The paper's core validation claim: analysis tracks simulation."""
        model_config = ModelConfig(architecture="non-blocking", message_bytes=1024)
        sim_config = SimulationConfig(
            architecture="non-blocking", message_bytes=1024, num_messages=3000, seed=2
        )
        point = validate_against_analysis(small_case1_system, model_config, sim_config)
        assert point.relative_error < 0.10
        row = point.as_dict()
        assert row["num_clusters"] == 4

    def test_validate_rejects_mismatched_configs(self, small_case1_system):
        model_config = ModelConfig(architecture="non-blocking", message_bytes=1024)
        sim_config = SimulationConfig(architecture="blocking", message_bytes=1024)
        with pytest.raises(ConfigurationError):
            validate_against_analysis(small_case1_system, model_config, sim_config)

    def test_validate_default_sim_config(self, small_case1_system):
        model_config = ModelConfig(architecture="non-blocking", message_bytes=512)
        point = validate_against_analysis(
            small_case1_system,
            model_config,
            SimulationConfig(architecture="non-blocking", message_bytes=512,
                             num_messages=1500, seed=8),
        )
        assert point.analysis_latency_ms > 0
        assert point.simulation_latency_ms > 0
