"""Golden-trace regression tests for the optimized simulation layer.

``golden_trace.json`` was captured from the simulator *before* the PR-4
performance work (virtual FIFO service centres, batched variate streams,
slotted events, array-backed monitors) landed.  Every float in the fixture
is a ``float.hex()`` string, and every comparison here is exact equality:
the optimizations must reproduce the original per-message timings — not
just the means — bit for bit, for every seed, on every execution backend.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster.presets import paper_evaluation_system
from repro.des.rng import RandomStreams
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.parallel import SweepEngine, SweepTask
from repro.parallel.backends import ProcessPoolBackend, SerialBackend, SocketBackend
from repro.simulation.runner import run_message_trace_task, run_simulation_task
from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig
from repro.simulation.trace_simulator import TraceDrivenSimulator, TraceSimulationConfig
from repro.simulation.vectorized_replay import (
    replay_trace,
    run_vectorized_simulation_task,
)
from repro.workload.arrivals import DeterministicArrivals
from repro.workload.destinations import LocalizedDestinations
from repro.workload.messages import generate_trace

FIXTURE = Path(__file__).parent / "golden_trace.json"

#: Generous handshake budget for the 1-CPU CI box (workers import numpy).
ACCEPT_TIMEOUT = 60.0


@pytest.fixture(scope="module")
def golden() -> dict:
    with FIXTURE.open() as handle:
        return json.load(handle)


def _system():
    return paper_evaluation_system(2, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=8)


def _assert_simulation_matches(golden_case: dict, system, config, policy=None) -> None:
    sim = MultiClusterSimulator(system, config, policy)
    result = sim.run()
    assert result.mean_latency_s.hex() == golden_case["mean_latency_s"]
    assert result.simulated_time_s.hex() == golden_case["simulated_time_s"]
    assert result.measured_messages == golden_case["measured"]
    assert result.completed_messages == golden_case["completed"]
    assert result.remote_fraction.hex() == golden_case["remote_fraction"]
    for name, value in result.utilizations.items():
        assert value.hex() == golden_case["utilizations"][name], name
    for name, value in result.mean_occupancies.items():
        assert value.hex() == golden_case["occupancies"][name], name
    assert len(sim.sink.messages) == len(golden_case["messages"])
    for message, expected in zip(sim.sink.messages, golden_case["messages"]):
        assert message.ident == expected["ident"]
        assert list(message.source) == expected["src"]
        assert list(message.destination) == expected["dst"]
        assert message.created_at.hex() == expected["created"]
        assert message.completed_at.hex() == expected["completed"]
        assert message.path == expected["path"]


class TestGoldenMultiClusterSimulator:
    def test_nonblocking_exponential(self, golden):
        _assert_simulation_matches(
            golden["multicluster_nonblocking_exponential"],
            _system(),
            SimulationConfig(num_messages=250, seed=1234),
        )

    def test_blocking_deterministic_service(self, golden):
        """Deterministic service produces heavy event-time ties — the case
        most likely to expose event-ordering drift in a rewritten hot path."""
        _assert_simulation_matches(
            golden["multicluster_blocking_deterministic"],
            _system(),
            SimulationConfig(
                architecture="blocking", exponential_service=False, num_messages=200, seed=77
            ),
        )

    def test_localized_policy_scalar_fallback(self, golden):
        """Localized policies interleave bernoulli and integer draws on one
        stream, so they must take the scalar (non-batched) chooser path."""
        _assert_simulation_matches(
            golden["multicluster_localized_policy"],
            _system(),
            SimulationConfig(num_messages=150, seed=5),
            LocalizedDestinations([4, 4], locality=0.5),
        )


class TestGoldenTraceDrivenSimulator:
    def test_trace_replay(self, golden):
        expected = golden["trace_driven"]
        trace = generate_trace([4, 4], num_messages=200, seed=42)
        sim = TraceDrivenSimulator(_system(), trace, TraceSimulationConfig(seed=7))
        result = sim.run()
        assert result.mean_latency_s.hex() == expected["mean_latency_s"]
        assert result.makespan_s.hex() == expected["makespan_s"]
        assert result.completed_messages == expected["completed"]
        assert result.remote_fraction.hex() == expected["remote_fraction"]
        for name, value in result.utilizations.items():
            assert value.hex() == expected["utilizations"][name], name
        assert [x.hex() for x in sim._latencies] == expected["latencies"]


def _ties_trace():
    """Periodic arrivals: 150 messages share only ~19 distinct clock values."""
    return generate_trace(
        [4, 4], num_messages=150,
        arrival_process=DeterministicArrivals(rate=0.5), seed=21,
    )


class TestGoldenVectorizedReplay:
    """The event-loop-free replay reproduces the DES goldens bit for bit."""

    def test_replay_trace_matches_trace_driven_fixture(self, golden):
        """Same fixture entry as the DES replay — the vectorized evaluator
        must land on the pre-PR4 golden numbers, not merely near them."""
        expected = golden["trace_driven"]
        trace = generate_trace([4, 4], num_messages=200, seed=42)
        result = replay_trace(_system(), trace, TraceSimulationConfig(seed=7))
        assert result.mean_latency_s.hex() == expected["mean_latency_s"]
        assert result.makespan_s.hex() == expected["makespan_s"]
        assert result.completed_messages == expected["completed"]
        assert result.remote_fraction.hex() == expected["remote_fraction"]
        for name, value in result.utilizations.items():
            assert value.hex() == expected["utilizations"][name], name

    def test_deterministic_ties_fixture_both_engines(self, golden):
        """Deterministic service + periodic arrivals produce heavy event-time
        ties — the case most likely to expose event-id drift in the lean
        heap.  Both engines must reproduce the DES-captured fixture."""
        expected = golden["trace_driven_deterministic_ties"]
        config = TraceSimulationConfig(seed=7, exponential_service=False)

        des = TraceDrivenSimulator(_system(), _ties_trace(), config)
        des_result = des.run()
        assert [x.hex() for x in des._latencies] == expected["latencies"]

        vec_result = replay_trace(_system(), _ties_trace(), config)
        for result in (des_result, vec_result):
            assert result.mean_latency_s.hex() == expected["mean_latency_s"]
            assert result.makespan_s.hex() == expected["makespan_s"]
            assert result.completed_messages == expected["completed"]
            assert result.remote_fraction.hex() == expected["remote_fraction"]
            assert result.confidence_interval.mean.hex() == expected["ci_mean"]
            assert result.confidence_interval.half_width.hex() == expected["ci_half_width"]
            for name, value in result.utilizations.items():
                assert value.hex() == expected["utilizations"][name], name

    def test_vectorized_closed_loop_matches_simulator_fixture(self, golden):
        """The lean closed-loop engine lands on the closed-loop golden."""
        expected = golden["multicluster_nonblocking_exponential"]
        result = run_vectorized_simulation_task(
            _system(), SimulationConfig(num_messages=250, seed=1234)
        )
        assert result.mean_latency_s.hex() == expected["mean_latency_s"]
        assert result.simulated_time_s.hex() == expected["simulated_time_s"]
        assert result.measured_messages == expected["measured"]
        assert result.completed_messages == expected["completed"]
        assert result.remote_fraction.hex() == expected["remote_fraction"]
        for name, value in result.utilizations.items():
            assert value.hex() == expected["utilizations"][name], name
        for name, value in result.mean_occupancies.items():
            assert value.hex() == expected["occupancies"][name], name


class TestGoldenRandomStreams:
    """The batched-RNG determinism guarantee, pinned draw by draw."""

    def test_draw_sequences(self, golden):
        expected = golden["random_streams"]
        streams = RandomStreams(seed=9)
        assert [
            streams.stream("arrivals-0-0").exponential_rate(0.25).hex() for _ in range(12)
        ] == expected["exponential_rate_0.25"]
        assert [
            streams.stream("service-icn2").exponential(0.001).hex() for _ in range(12)
        ] == expected["exponential_0.001"]
        assert [
            streams.stream("destination-0-0").integer(0, 6) for _ in range(16)
        ] == expected["integer_0_6"]
        assert [
            streams.stream("u").uniform(0.0, 1.0).hex() for _ in range(8)
        ] == expected["uniform_0_1"]
        assert [
            streams.stream("b").bernoulli(0.3) for _ in range(12)
        ] == expected["bernoulli_0.3"]
        assert [
            streams.stream("e").erlang(3, 2.0).hex() for _ in range(8)
        ] == expected["erlang_3_2.0"]

    def test_batched_streams_reproduce_pinned_sequences(self, golden):
        """The same pinned sequences, served through the batched streams."""
        expected = golden["random_streams"]
        streams = RandomStreams(seed=9)
        arrivals = streams.stream("arrivals-0-0").exponential_rate_stream(0.25)
        assert [arrivals().hex() for _ in range(12)] == expected["exponential_rate_0.25"]
        service = streams.stream("service-icn2").exponential_stream(0.001)
        assert [service().hex() for _ in range(12)] == expected["exponential_0.001"]
        destination = streams.stream("destination-0-0").integer_stream(0, 6)
        assert [destination() for _ in range(16)] == expected["integer_0_6"]
        uniform = streams.stream("u").uniform_stream(0.0, 1.0)
        assert [uniform().hex() for _ in range(8)] == expected["uniform_0_1"]
        erlang = streams.stream("e").erlang_stream(3, 2.0)
        assert [erlang().hex() for _ in range(8)] == expected["erlang_3_2.0"]


class TestGoldenAcrossBackends:
    """Per-message latencies are identical on every execution backend."""

    def test_serial_pool_socket_reproduce_golden(self, golden):
        expected = [
            (m["ident"], m["created"], m["completed"])
            for m in golden["multicluster_nonblocking_exponential"]["messages"]
        ]
        # A library-level task (not a test closure) so socket worker
        # daemons — fresh processes — can import and unpickle it.
        tasks = [
            SweepTask(
                fn=run_message_trace_task,
                args=(_system(), SimulationConfig(num_messages=250, seed=1234)),
            )
        ]
        engines = {
            "serial": SweepEngine(backend=SerialBackend()),
            "pool": SweepEngine(backend=ProcessPoolBackend(jobs=2)),
            "socket": SweepEngine(
                backend=SocketBackend(spawn_workers=1, accept_timeout=ACCEPT_TIMEOUT)
            ),
        }
        for name, engine in engines.items():
            (per_message,) = engine.run(tasks)
            assert per_message == expected, f"{name} backend diverged from the golden trace"

    def test_vectorized_task_identical_on_every_backend(self):
        """The vectorized closed-loop task — the unit of work engine_mode=auto
        ships — returns the same SimulationResult as the DES task on serial,
        pool and socket backends (full dataclass equality, so per-field
        bit-identity)."""
        config = SimulationConfig(num_messages=250, seed=1234)
        reference = run_simulation_task(_system(), config)
        tasks = [SweepTask(fn=run_vectorized_simulation_task, args=(_system(), config))]
        engines = {
            "serial": SweepEngine(backend=SerialBackend()),
            "pool": SweepEngine(backend=ProcessPoolBackend(jobs=2)),
            "socket": SweepEngine(
                backend=SocketBackend(spawn_workers=1, accept_timeout=ACCEPT_TIMEOUT)
            ),
        }
        for name, engine in engines.items():
            (result,) = engine.run(tasks)
            assert result == reference, f"{name} backend diverged from the DES result"
