"""Tests for the event-loop-free evaluators in ``repro.simulation.vectorized_replay``.

The golden-trace suite pins the vectorized paths to the historical fixture;
this module covers the rest of the contract: exact equivalence to the DES
across configurations, the FIFO-recurrence kernel itself, and — critically —
the eligibility predicate.  The fast path must *refuse* state-dependent
workloads (failures, non-uniform destinations, non-renewal arrivals) rather
than silently computing something else.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.presets import paper_evaluation_system
from repro.errors import ConfigurationError
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.simulation.faults import FaultSpec
from repro.simulation.runner import replication_configs, run_simulation_task
from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig
from repro.simulation.trace_simulator import TraceDrivenSimulator, TraceSimulationConfig
from repro.simulation.vectorized_replay import (
    VectorizedClosedLoopSimulator,
    _fifo_departures,
    _fifo_departures_scalar,
    can_vectorize,
    replay_trace,
    run_vectorized_point,
    run_vectorized_simulation_task,
    vectorization_blockers,
)
from repro.workload.arrivals import (
    ErlangArrivals,
    HyperexponentialArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.workload.destinations import LocalizedDestinations, UniformDestinations
from repro.workload.messages import generate_trace


def _system(clusters: int = 2, processors: int = 8):
    return paper_evaluation_system(
        clusters, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=processors
    )


def _trace_result_hexes(result) -> list:
    out = [
        result.mean_latency_s.hex(),
        result.makespan_s.hex(),
        result.completed_messages,
        result.injected_messages,
        result.remote_fraction.hex(),
    ]
    if result.confidence_interval is not None:
        out.append(result.confidence_interval.mean.hex())
        out.append(result.confidence_interval.half_width.hex())
    out.extend((name, value.hex()) for name, value in result.utilizations.items())
    return out


class TestFifoDepartures:
    """The vectorized Lindley recurrence against the exact scalar loop."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_workloads_bit_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = 500
        arrivals = np.sort(rng.uniform(0.0, 50.0, n))
        services = rng.exponential(0.2, n)
        fast = _fifo_departures(arrivals, services)
        slow = _fifo_departures_scalar(arrivals, services)
        assert fast.tolist() == slow.tolist()

    def test_tie_heavy_workload_bit_exact(self):
        """Integer arrivals + constant service: every boundary is a tie."""
        arrivals = np.repeat(np.arange(50.0), 4)
        services = np.full(200, 0.25)
        assert (
            _fifo_departures(arrivals, services).tolist()
            == _fifo_departures_scalar(arrivals, services).tolist()
        )

    def test_empty_and_singleton(self):
        assert _fifo_departures(np.empty(0), np.empty(0)).shape == (0,)
        assert _fifo_departures(np.array([2.0]), np.array([0.5])).tolist() == [2.5]


class TestReplayTraceEquivalence:
    """replay_trace == TraceDrivenSimulator, float.hex()-exact."""

    @pytest.mark.parametrize(
        "config",
        [
            TraceSimulationConfig(seed=7),
            TraceSimulationConfig(seed=7, exponential_service=False),
            TraceSimulationConfig(seed=3, architecture="blocking"),
            TraceSimulationConfig(seed=11, stats_mode="online"),
        ],
        ids=["exponential", "deterministic", "blocking", "online"],
    )
    def test_matches_des(self, config):
        trace = generate_trace([4, 4], num_messages=300, seed=17)
        des = TraceDrivenSimulator(_system(), trace, config).run()
        vec = replay_trace(_system(), trace, config)
        assert _trace_result_hexes(vec) == _trace_result_hexes(des)


class TestEligibility:
    """can_vectorize / vectorization_blockers: explicit, conservative."""

    def test_default_workload_is_eligible(self):
        assert vectorization_blockers() == []
        assert can_vectorize(SimulationConfig())

    def test_uniform_policy_instance_is_eligible(self):
        assert can_vectorize(destination_policy=UniformDestinations([4, 4]))

    def test_renewal_arrival_factories_are_eligible(self):
        for factory in (PoissonArrivals, lambda rate: ErlangArrivals(rate=rate, shape=3),
                        lambda rate: HyperexponentialArrivals(rate=rate, cv2=4.0)):
            assert can_vectorize(arrival_factory=factory)

    def test_failures_block_refuses(self):
        blockers = vectorization_blockers(failures=FaultSpec(mtbf_s=10.0, mttr_s=1.0))
        assert any("failure injection" in reason for reason in blockers)
        config = SimulationConfig(failures=FaultSpec(mtbf_s=10.0, mttr_s=1.0))
        assert not can_vectorize(config)

    def test_localized_destinations_refuse(self):
        blockers = vectorization_blockers(
            destination_policy=LocalizedDestinations([4, 4], locality=0.5)
        )
        assert any("LocalizedDestinations" in reason for reason in blockers)

    def test_time_varying_arrivals_refuse(self):
        blockers = vectorization_blockers(
            arrival_factory=lambda rate: MMPPArrivals(low_rate=rate / 2, high_rate=rate * 2)
        )
        assert any("renewal" in reason for reason in blockers)

    def test_ineligible_workload_raises_not_degrades(self):
        """The task entry point refuses; it never silently falls back."""
        config = SimulationConfig(
            num_messages=50, failures=FaultSpec(mtbf_s=10.0, mttr_s=1.0)
        )
        with pytest.raises(ConfigurationError, match="not vectorizable"):
            VectorizedClosedLoopSimulator(_system(), config)
        with pytest.raises(ConfigurationError, match="not vectorizable"):
            run_vectorized_simulation_task(_system(), config)


class TestClosedLoopEquivalence:
    """The lean engine returns dataclass-equal SimulationResults."""

    @pytest.mark.parametrize(
        "config",
        [
            SimulationConfig(num_messages=200, seed=5),
            SimulationConfig(num_messages=200, seed=5, architecture="blocking"),
            SimulationConfig(num_messages=200, seed=9, stats_mode="online"),
        ],
        ids=["nonblocking", "blocking", "online"],
    )
    def test_matches_des(self, config):
        des = MultiClusterSimulator(_system(), config).run()
        vec = VectorizedClosedLoopSimulator(_system(), config).run()
        assert vec == des

    def test_matches_des_with_renewal_arrival_factory(self):
        config = SimulationConfig(num_messages=150, seed=3)
        factory = lambda rate: ErlangArrivals(rate=rate, shape=4)  # noqa: E731
        des = MultiClusterSimulator(_system(), config, arrival_factory=factory).run()
        vec = run_vectorized_simulation_task(_system(), config, arrival_factory=factory)
        assert vec == des

    def test_run_vectorized_point_matches_replicated_des(self):
        config = SimulationConfig(num_messages=120, seed=42)
        vec = run_vectorized_point(_system(), config, replications=3)
        des = [
            run_simulation_task(_system(), rep_config)
            for rep_config in replication_configs(config, 3)
        ]
        assert vec == des
