"""Tests for the vectorized analytical grid evaluation.

The contract is *bit-identity*: every point of
:func:`repro.core.vectorized.evaluate_latency_grid` must equal the scalar
``AnalyticalModel(system, config).evaluate()`` result exactly (``==`` on
the raw floats), because the vectorized fixed point applies the same
IEEE-754 operations per element and freezes each point at the iterate
where the scalar solver stops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import AnalyticalModel, ModelConfig
from repro.core.vectorized import evaluate_latency_grid
from repro.errors import StabilityError
from repro.experiments.scenarios import CASE_1, CASE_2, PAPER_PARAMETERS, build_scenario_system


def _paper_grid(scenarios=(CASE_1, CASE_2), architectures=("non-blocking", "blocking")):
    pairs = []
    for scenario in scenarios:
        for architecture in architectures:
            for mb in PAPER_PARAMETERS.message_sizes:
                for nc in PAPER_PARAMETERS.cluster_counts:
                    system = build_scenario_system(scenario, nc, PAPER_PARAMETERS)
                    pairs.append(
                        (
                            system,
                            ModelConfig(
                                architecture=architecture,
                                message_bytes=float(mb),
                                generation_rate=PAPER_PARAMETERS.generation_rate,
                            ),
                        )
                    )
    return pairs


class TestGridBitIdentity:
    def test_full_paper_grid_matches_scalar_exactly(self):
        pairs = _paper_grid()
        grid = evaluate_latency_grid(pairs)
        assert len(grid) == len(pairs)
        assert grid.scalar_fallback == ()
        for i, (system, config) in enumerate(pairs):
            report = AnalyticalModel(system, config).evaluate()
            assert float(grid.mean_latency_s[i]) == report.mean_latency_s, i
            assert float(grid.local_latency_s[i]) == report.local_latency_s, i
            assert float(grid.remote_latency_s[i]) == report.remote_latency_s, i
            assert float(grid.effective_rate[i]) == report.effective_rate, i
            assert int(grid.iterations[i]) == report.fixed_point_iterations, i
            assert float(grid.outgoing_probability[i]) == report.outgoing_probability, i

    def test_non_power_of_two_cluster_counts_match_scalar_exactly(self):
        """Regression: lam_ecn1 must be summed as forward + return (icn2/C)
        like compute_traffic_rates — the algebraically equal ``2*n0*p*lam``
        rounds differently when C is not a power of two."""
        from repro.cluster.presets import paper_evaluation_system
        from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET

        pairs = []
        for c, total in [(3, 96), (6, 96), (7, 84), (12, 96)]:
            system = paper_evaluation_system(
                c, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=total
            )
            for architecture in ("non-blocking", "blocking"):
                pairs.append(
                    (
                        system,
                        ModelConfig(
                            architecture=architecture,
                            message_bytes=2048.0,
                            generation_rate=0.5,
                        ),
                    )
                )
        grid = evaluate_latency_grid(pairs)
        for i, (system, config) in enumerate(pairs):
            report = AnalyticalModel(system, config).evaluate()
            assert float(grid.mean_latency_s[i]) == report.mean_latency_s, i
            assert float(grid.effective_rate[i]) == report.effective_rate, i

    def test_mean_latency_ms_unit(self):
        pairs = _paper_grid(scenarios=(CASE_1,), architectures=("non-blocking",))[:4]
        grid = evaluate_latency_grid(pairs)
        assert np.array_equal(grid.mean_latency_ms, grid.mean_latency_s * 1e3)


class TestGridFallbacks:
    def test_empty_grid(self):
        grid = evaluate_latency_grid([])
        assert len(grid) == 0
        assert grid.scalar_fallback == ()

    def test_open_model_points_fall_back_to_scalar(self):
        system = build_scenario_system(CASE_1, 4, PAPER_PARAMETERS)
        config = ModelConfig(
            architecture="non-blocking", message_bytes=1024.0, finite_source_correction=False
        )
        grid = evaluate_latency_grid([(system, config)])
        assert grid.scalar_fallback == (0,)
        report = AnalyticalModel(system, config).evaluate()
        assert float(grid.mean_latency_s[0]) == report.mean_latency_s
        assert int(grid.iterations[0]) == report.fixed_point_iterations == 0

    def test_zero_rate_points_fall_back_to_scalar(self):
        system = build_scenario_system(CASE_1, 4, PAPER_PARAMETERS)
        config = ModelConfig(
            architecture="non-blocking", message_bytes=1024.0, generation_rate=0.0
        )
        grid = evaluate_latency_grid([(system, config)])
        assert grid.scalar_fallback == (0,)
        report = AnalyticalModel(system, config).evaluate()
        assert float(grid.mean_latency_s[0]) == report.mean_latency_s

    def test_mixed_grid_with_fallback_points(self):
        system = build_scenario_system(CASE_1, 8, PAPER_PARAMETERS)
        closed = ModelConfig(architecture="non-blocking", message_bytes=512.0)
        open_model = ModelConfig(
            architecture="blocking", message_bytes=1024.0, finite_source_correction=False
        )
        grid = evaluate_latency_grid([(system, closed), (system, open_model)])
        assert grid.scalar_fallback == (1,)
        for i, config in enumerate((closed, open_model)):
            report = AnalyticalModel(system, config).evaluate()
            assert float(grid.mean_latency_s[i]) == report.mean_latency_s

    def test_saturated_point_raises_like_scalar(self):
        system = build_scenario_system(CASE_1, 4, PAPER_PARAMETERS)
        config = ModelConfig(
            architecture="non-blocking",
            message_bytes=1024.0,
            generation_rate=1e9,
            finite_source_correction=False,
        )
        with pytest.raises(StabilityError):
            AnalyticalModel(system, config).evaluate()
        with pytest.raises(StabilityError):
            evaluate_latency_grid([(system, config)])


class TestRunFigureUsesGrid:
    def test_analysis_only_figure_matches_scalar_model(self):
        """run_figure's analysis pass (now vectorized) equals per-point evals."""
        from repro.experiments.figures import FIGURE_SPECS, run_figure

        spec = FIGURE_SPECS[4]
        result = run_figure(4, include_simulation=False, cluster_counts=[2, 8, 32])
        for point in result.points:
            system = build_scenario_system(spec.scenario, point.num_clusters, PAPER_PARAMETERS)
            report = AnalyticalModel(
                system,
                ModelConfig(
                    architecture=spec.architecture,
                    message_bytes=float(point.message_bytes),
                    generation_rate=PAPER_PARAMETERS.generation_rate,
                ),
            ).evaluate()
            assert point.analysis_latency_ms == report.mean_latency_ms


class TestGridUtilizationAndThrottling:
    """The PR-5 fields feeding the vectorized generation-rate ablation."""

    def test_icn2_utilization_and_throttling_match_scalar_exactly(self):
        system = build_scenario_system(CASE_1, 16, PAPER_PARAMETERS)
        pairs = [
            (
                system,
                ModelConfig(
                    architecture="non-blocking", message_bytes=1024.0,
                    generation_rate=rate,
                ),
            )
            for rate in (0.25, 1.0, 10.0, 100.0, 500.0, 1000.0)
        ]
        grid = evaluate_latency_grid(pairs)
        for i, (sys_, config) in enumerate(pairs):
            report = AnalyticalModel(sys_, config).evaluate()
            assert float(grid.icn2_utilization[i]) == report.utilizations["icn2"], i
            assert float(grid.throttling_factor[i]) == report.throttling_factor, i

    def test_fallback_points_carry_scalar_utilization(self):
        system = build_scenario_system(CASE_1, 4, PAPER_PARAMETERS)
        config = ModelConfig(
            architecture="non-blocking", message_bytes=1024.0, generation_rate=0.0
        )
        grid = evaluate_latency_grid([(system, config)])
        assert grid.scalar_fallback == (0,)
        report = AnalyticalModel(system, config).evaluate()
        assert float(grid.icn2_utilization[0]) == report.utilizations["icn2"]
        assert float(grid.throttling_factor[0]) == report.throttling_factor == 1.0
