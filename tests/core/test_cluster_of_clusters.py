"""Unit tests for the Cluster-of-Clusters analytical extension."""

from __future__ import annotations

import pytest

from repro.cluster.presets import llnl_like_system, paper_evaluation_system
from repro.cluster.system import MultiClusterSystem
from repro.core.cluster_of_clusters import (
    ClusterOfClustersModel,
    HeterogeneousModelConfig,
)
from repro.core.model import AnalyticalModel, ModelConfig
from repro.errors import ConfigurationError, StabilityError
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET


class TestHeterogeneousModelConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousModelConfig(message_bytes=0)
        with pytest.raises(ConfigurationError):
            HeterogeneousModelConfig(generation_rate=-1)


class TestClusterOfClustersModel:
    def test_reduces_to_supercluster_model_when_homogeneous(self):
        """On an equal-size homogeneous system both models must agree closely."""
        system = paper_evaluation_system(8, GIGABIT_ETHERNET, FAST_ETHERNET)
        super_report = AnalyticalModel(
            system, ModelConfig(architecture="non-blocking", message_bytes=1024)
        ).evaluate()
        hetero_report = ClusterOfClustersModel(
            system,
            HeterogeneousModelConfig(architecture="non-blocking", message_bytes=1024),
        ).evaluate()
        assert hetero_report.mean_latency_s == pytest.approx(
            super_report.mean_latency_s, rel=1e-6
        )

    def test_llnl_like_system_evaluates(self):
        report = ClusterOfClustersModel(llnl_like_system()).evaluate()
        assert report.mean_latency_s > 0
        assert report.num_clusters == 4
        assert report.total_processors == 304
        assert set(report.per_cluster_local_latency_s) == {"mcr", "alc", "thunder", "pvc"}
        assert report.mean_latency_ms == pytest.approx(report.mean_latency_s * 1e3)

    def test_outgoing_probability_depends_on_cluster_size(self):
        report = ClusterOfClustersModel(llnl_like_system()).evaluate()
        p = report.per_cluster_outgoing_probability
        # The smallest cluster (pvc, 16 nodes) has the highest remote probability.
        assert p["pvc"] > p["mcr"]
        assert all(0.0 < value < 1.0 for value in p.values())

    def test_faster_icn2_lowers_latency(self):
        slow = MultiClusterSystem.from_cluster_sizes(
            sizes=[16, 32],
            icn_technologies=[GIGABIT_ETHERNET, GIGABIT_ETHERNET],
            ecn_technologies=[FAST_ETHERNET, FAST_ETHERNET],
            icn2_technology=FAST_ETHERNET,
        )
        fast = MultiClusterSystem.from_cluster_sizes(
            sizes=[16, 32],
            icn_technologies=[GIGABIT_ETHERNET, GIGABIT_ETHERNET],
            ecn_technologies=[FAST_ETHERNET, FAST_ETHERNET],
            icn2_technology=GIGABIT_ETHERNET,
        )
        slow_latency = ClusterOfClustersModel(slow).evaluate().mean_latency_s
        fast_latency = ClusterOfClustersModel(fast).evaluate().mean_latency_s
        assert fast_latency < slow_latency

    def test_blocking_architecture_slower(self):
        system = llnl_like_system()
        nb = ClusterOfClustersModel(
            system, HeterogeneousModelConfig(architecture="non-blocking")
        ).evaluate()
        b = ClusterOfClustersModel(
            system, HeterogeneousModelConfig(architecture="blocking")
        ).evaluate()
        assert b.mean_latency_s > nb.mean_latency_s

    def test_utilizations_reported_per_cluster(self):
        report = ClusterOfClustersModel(llnl_like_system()).evaluate()
        assert "icn2" in report.utilizations
        assert any(key.startswith("icn1[") for key in report.utilizations)
        assert all(0.0 <= u < 1.0 for u in report.utilizations.values())

    def test_single_processor_total_rejected(self):
        tiny = MultiClusterSystem.from_cluster_sizes(
            sizes=[1],
            icn_technologies=[FAST_ETHERNET],
            ecn_technologies=[FAST_ETHERNET],
            icn2_technology=FAST_ETHERNET,
        )
        with pytest.raises(ConfigurationError):
            ClusterOfClustersModel(tiny)

    def test_saturated_configuration_raises(self):
        system = llnl_like_system()
        with pytest.raises(StabilityError):
            ClusterOfClustersModel(
                system,
                HeterogeneousModelConfig(
                    generation_rate=1e6, finite_source_correction=False
                ),
            ).evaluate()

    def test_finite_source_correction_reduces_rates_under_load(self):
        system = llnl_like_system()
        report = ClusterOfClustersModel(
            system, HeterogeneousModelConfig(generation_rate=500.0)
        ).evaluate()
        # Under heavy offered load the effective rates drop below nominal.
        assert all(rate < 500.0 for rate in report.per_cluster_effective_rate.values())

    def test_processor_speed_scales_generation(self):
        report = ClusterOfClustersModel(llnl_like_system()).evaluate()
        rates = report.per_cluster_effective_rate
        # Thunder's Itanium2 nodes have relative speed 1.4 vs PVC's 0.8.
        assert rates["thunder"] > rates["pvc"]
