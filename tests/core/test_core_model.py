"""Unit tests for service centres, the fixed point, latency and the model facade."""

from __future__ import annotations

import math

import pytest

from repro.cluster.presets import paper_evaluation_system
from repro.core.fixed_point import queue_lengths_at, solve_effective_rate
from repro.core.latency import WaitingTimes, mean_message_latency, waiting_time
from repro.core.model import AnalyticalModel, ModelConfig
from repro.core.service_centers import build_service_centers
from repro.core.traffic import compute_traffic_rates
from repro.errors import ConfigurationError, StabilityError
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET


class TestServiceCenters:
    def test_case1_technologies_assigned_correctly(self, paper_case1_system):
        centers = build_service_centers(paper_case1_system, "non-blocking", 1024)
        assert centers.icn1.technology is GIGABIT_ETHERNET
        assert centers.ecn1.technology is FAST_ETHERNET
        assert centers.icn2.technology is FAST_ETHERNET

    def test_attached_node_counts(self, paper_case1_system):
        centers = build_service_centers(paper_case1_system, "non-blocking", 1024)
        assert centers.icn1.attached_nodes == 16   # N0
        assert centers.ecn1.attached_nodes == 16   # N0
        assert centers.icn2.attached_nodes == 16   # C

    def test_service_rates_are_reciprocal_times(self, paper_case1_system):
        centers = build_service_centers(paper_case1_system, "non-blocking", 1024)
        assert centers.icn1_service_rate == pytest.approx(1.0 / centers.icn1_service_time)
        assert centers.ecn1_service_rate == pytest.approx(1.0 / centers.ecn1_service_time)
        assert centers.icn2_service_rate == pytest.approx(1.0 / centers.icn2_service_time)

    def test_blocking_service_slower(self, paper_case1_system):
        nb = build_service_centers(paper_case1_system, "non-blocking", 1024)
        b = build_service_centers(paper_case1_system, "blocking", 1024)
        assert b.ecn1_service_time > nb.ecn1_service_time

    def test_message_size_validation(self, paper_case1_system):
        with pytest.raises(ConfigurationError):
            build_service_centers(paper_case1_system, "non-blocking", 0.0)

    def test_as_dict_keys(self, paper_case1_system):
        d = build_service_centers(paper_case1_system, "non-blocking", 512).as_dict()
        assert set(d) == {
            "icn1_service_time", "ecn1_service_time", "icn2_service_time",
            "icn1_service_rate", "ecn1_service_rate", "icn2_service_rate",
        }


class TestFixedPoint:
    def test_light_load_barely_throttles(self, paper_case1_system):
        centers = build_service_centers(paper_case1_system, "non-blocking", 1024)
        result = solve_effective_rate(0.25, 16, 16, centers)
        assert result.converged
        assert result.effective_rate == pytest.approx(0.25, rel=1e-3)
        assert result.throttling_factor > 0.99
        assert result.total_waiting < 1.0

    def test_heavy_load_throttles(self, paper_case1_system):
        centers = build_service_centers(paper_case1_system, "non-blocking", 1024)
        # At 1000 msg/s per processor the ICN2 saturates without the correction.
        result = solve_effective_rate(1000.0, 16, 16, centers)
        assert result.converged
        assert result.effective_rate < 1000.0
        assert result.total_waiting > 0.0
        # The solution must leave every centre stable.
        lengths = queue_lengths_at(result.effective_rate, 16, 16, centers)
        assert math.isfinite(lengths.total(16))

    def test_zero_rate(self, paper_case1_system):
        centers = build_service_centers(paper_case1_system, "non-blocking", 1024)
        result = solve_effective_rate(0.0, 16, 16, centers)
        assert result.effective_rate == 0.0
        assert result.total_waiting == 0.0

    def test_effective_rate_monotone_in_nominal(self, paper_case1_system):
        centers = build_service_centers(paper_case1_system, "non-blocking", 1024)
        rates = [
            solve_effective_rate(lam, 16, 16, centers).effective_rate
            for lam in (0.25, 10.0, 100.0, 1000.0)
        ]
        assert rates == sorted(rates)

    def test_fixed_point_self_consistency(self, paper_case1_system):
        """λ_eff must satisfy λ_eff = (N − L(λ_eff))/N · λ (Eq. 7)."""
        centers = build_service_centers(paper_case1_system, "non-blocking", 1024)
        nominal = 200.0
        result = solve_effective_rate(nominal, 16, 16, centers)
        population = 256
        lengths = queue_lengths_at(result.effective_rate, 16, 16, centers)
        expected = (population - min(lengths.total(16), population)) / population * nominal
        assert result.effective_rate == pytest.approx(expected, rel=1e-4)

    def test_queue_lengths_eq6_combination(self, paper_case1_system):
        centers = build_service_centers(paper_case1_system, "non-blocking", 1024)
        lengths = queue_lengths_at(0.25, 16, 16, centers)
        assert lengths.total(16) == pytest.approx(
            16 * (2 * lengths.ecn1 + lengths.icn1) + lengths.icn2
        )

    def test_invalid_inputs(self, paper_case1_system):
        centers = build_service_centers(paper_case1_system, "non-blocking", 1024)
        with pytest.raises(ValueError):
            solve_effective_rate(-1.0, 16, 16, centers)
        with pytest.raises(ValueError):
            solve_effective_rate(1.0, 16, 16, centers, damping=0.0)


class TestLatency:
    def test_waiting_time_equation_16(self):
        assert waiting_time(2.0, 5.0) == pytest.approx(1.0 / 3.0)

    def test_waiting_time_saturation(self):
        with pytest.raises(StabilityError):
            waiting_time(5.0, 5.0)

    def test_waiting_time_validation(self):
        with pytest.raises(ValueError):
            waiting_time(-1.0, 5.0)
        with pytest.raises(ValueError):
            waiting_time(1.0, 0.0)

    def test_mean_latency_equation_15(self):
        waits = WaitingTimes(icn1=1.0, ecn1=2.0, icn2=3.0)
        breakdown = mean_message_latency(waits, outgoing_probability=0.25)
        # T = (1−P)·W_I1 + P·(W_I2 + 2·W_E1) = 0.75*1 + 0.25*7 = 2.5
        assert breakdown.local_latency == 1.0
        assert breakdown.remote_latency == 7.0
        assert breakdown.mean_latency == pytest.approx(2.5)
        assert breakdown.local_weight == 0.75
        assert breakdown.remote_weight == 0.25

    def test_probability_bounds(self):
        waits = WaitingTimes(1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            mean_message_latency(waits, 1.5)

    def test_from_rates_factory(self, paper_case1_system):
        centers = build_service_centers(paper_case1_system, "non-blocking", 1024)
        traffic = compute_traffic_rates(16, 16, 0.25)
        waits = WaitingTimes.from_rates(
            traffic,
            centers.icn1_service_rate,
            centers.ecn1_service_rate,
            centers.icn2_service_rate,
        )
        assert waits.icn1 > 0 and waits.ecn1 > 0 and waits.icn2 > 0
        # Each wait is at least the bare service time.
        assert waits.icn1 >= centers.icn1_service_time
        assert waits.ecn1 >= centers.ecn1_service_time


class TestAnalyticalModel:
    def test_report_structure(self, paper_case1_system):
        report = AnalyticalModel(paper_case1_system, ModelConfig(message_bytes=1024)).evaluate()
        assert report.num_clusters == 16
        assert report.processors_per_cluster == 16
        assert report.total_processors == 256
        assert report.mean_latency_s > 0
        assert report.mean_latency_ms == pytest.approx(report.mean_latency_s * 1e3)
        assert 0 <= report.outgoing_probability <= 1
        assert set(report.utilizations) == {"icn1", "ecn1", "icn2"}
        assert set(report.service_times) == {"icn1", "ecn1", "icn2"}
        assert report.fixed_point_iterations >= 1
        d = report.as_dict()
        assert d["mean_latency_ms"] == pytest.approx(report.mean_latency_ms)

    def test_single_cluster_latency_is_icn1_wait(self):
        system = paper_evaluation_system(1, GIGABIT_ETHERNET, FAST_ETHERNET)
        report = AnalyticalModel(system, ModelConfig(message_bytes=1024)).evaluate()
        assert report.outgoing_probability == 0.0
        assert report.mean_latency_s == pytest.approx(report.waits.icn1)

    def test_all_remote_latency_composition(self):
        system = paper_evaluation_system(256, GIGABIT_ETHERNET, FAST_ETHERNET)
        report = AnalyticalModel(system, ModelConfig(message_bytes=1024)).evaluate()
        assert report.outgoing_probability == pytest.approx(1.0)
        assert report.mean_latency_s == pytest.approx(
            report.waits.icn2 + 2 * report.waits.ecn1
        )

    def test_larger_messages_increase_latency(self, paper_case1_system):
        small = AnalyticalModel(paper_case1_system, ModelConfig(message_bytes=512)).evaluate()
        large = AnalyticalModel(paper_case1_system, ModelConfig(message_bytes=1024)).evaluate()
        assert large.mean_latency_s > small.mean_latency_s

    def test_blocking_slower_than_nonblocking(self, paper_case1_system):
        nb = AnalyticalModel(
            paper_case1_system, ModelConfig(architecture="non-blocking", message_bytes=1024)
        ).evaluate()
        b = AnalyticalModel(
            paper_case1_system, ModelConfig(architecture="blocking", message_bytes=1024)
        ).evaluate()
        assert b.mean_latency_s > nb.mean_latency_s

    def test_latency_grows_with_cluster_count_nonblocking(self):
        latencies = []
        for c in (1, 4, 64, 256):
            system = paper_evaluation_system(c, GIGABIT_ETHERNET, FAST_ETHERNET)
            latencies.append(
                AnalyticalModel(system, ModelConfig(message_bytes=1024)).evaluate().mean_latency_s
            )
        assert latencies == sorted(latencies)

    def test_c16_dip_matches_paper_observation(self):
        """§6: 'different behaviour' at C = 16 because C and N0 <= Pr = 24."""
        lat = {}
        for c in (8, 16, 32):
            system = paper_evaluation_system(c, GIGABIT_ETHERNET, FAST_ETHERNET)
            lat[c] = AnalyticalModel(system, ModelConfig(message_bytes=1024)).evaluate().mean_latency_s
        assert lat[16] < lat[8]
        assert lat[16] < lat[32]

    def test_finite_source_correction_toggle(self, paper_case1_system):
        # 20 msg/s drives the ICN2 to ~75% utilisation: still stable for the
        # open model but high enough for the finite-source effect to show.
        corrected = AnalyticalModel(
            paper_case1_system,
            ModelConfig(message_bytes=1024, generation_rate=20.0),
        ).evaluate()
        open_model = AnalyticalModel(
            paper_case1_system,
            ModelConfig(
                message_bytes=1024, generation_rate=20.0, finite_source_correction=False
            ),
        ).evaluate()
        # The open model offers more load, so it predicts higher latency.
        assert corrected.effective_rate < 20.0
        assert open_model.effective_rate == 20.0
        assert open_model.mean_latency_s >= corrected.mean_latency_s

    def test_infeasible_open_load_raises(self, paper_case1_system):
        with pytest.raises(StabilityError):
            AnalyticalModel(
                paper_case1_system,
                ModelConfig(
                    message_bytes=1024,
                    generation_rate=10_000.0,
                    finite_source_correction=False,
                ),
            ).evaluate()

    def test_cluster_of_clusters_rejected(self):
        from repro.cluster.presets import llnl_like_system

        with pytest.raises(ConfigurationError):
            AnalyticalModel(llnl_like_system(), ModelConfig())

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(message_bytes=0)
        with pytest.raises(ConfigurationError):
            ModelConfig(generation_rate=-1.0)

    def test_mean_latency_shortcut(self, paper_case1_system):
        model = AnalyticalModel(paper_case1_system, ModelConfig(message_bytes=512))
        assert model.mean_latency_s() == pytest.approx(model.evaluate().mean_latency_s)

    def test_repr(self, paper_case1_system):
        assert "non-blocking" in repr(AnalyticalModel(paper_case1_system, ModelConfig()))
