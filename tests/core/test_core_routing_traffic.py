"""Unit tests for the routing probability (Eq. 8) and traffic equations (Eqs. 1-5)."""

from __future__ import annotations

import pytest

from repro.core.routing import (
    local_destinations,
    local_probability,
    outgoing_probability,
    remote_destinations,
)
from repro.core.traffic import compute_traffic_rates
from repro.errors import ConfigurationError
from repro.queueing.jackson import JacksonNetwork, ServiceCenter


class TestRoutingProbability:
    def test_equation_8_paper_platform(self):
        """P = (C−1)·N0/(C·N0 − 1) for the paper's N = 256 platform."""
        # C = 16, N0 = 16: P = 15*16/255 = 0.941176...
        assert outgoing_probability(16, 16) == pytest.approx(240.0 / 255.0)
        # C = 2, N0 = 128: P = 128/255.
        assert outgoing_probability(2, 128) == pytest.approx(128.0 / 255.0)

    def test_single_cluster_probability_zero(self):
        assert outgoing_probability(1, 256) == 0.0
        assert local_probability(1, 256) == 1.0

    def test_one_node_per_cluster_probability_one(self):
        assert outgoing_probability(256, 1) == pytest.approx(1.0)

    def test_single_node_system(self):
        assert outgoing_probability(1, 1) == 0.0

    def test_probability_bounds_and_monotonicity(self):
        previous = -1.0
        for c in (1, 2, 4, 8, 16, 32, 64, 128, 256):
            p = outgoing_probability(c, 256 // c)
            assert 0.0 <= p <= 1.0
            assert p >= previous  # P grows as the cluster count grows (N fixed)
            previous = p

    def test_local_plus_outgoing_is_one(self):
        assert local_probability(8, 32) + outgoing_probability(8, 32) == pytest.approx(1.0)

    def test_destination_counts(self):
        assert remote_destinations(4, 8) == 24
        assert local_destinations(4, 8) == 7
        # They must sum to N − 1.
        assert remote_destinations(4, 8) + local_destinations(4, 8) == 31

    def test_probability_equals_destination_ratio(self):
        c, n0 = 8, 32
        expected = remote_destinations(c, n0) / (c * n0 - 1)
        assert outgoing_probability(c, n0) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            outgoing_probability(0, 4)
        with pytest.raises(ConfigurationError):
            outgoing_probability(4, 0)


class TestTrafficEquations:
    def test_equations_1_to_5_closed_forms(self):
        """Check λ_I1 = N0(1−P)λ, λ_E1 = 2N0Pλ, λ_I2 = C·N0·P·λ."""
        c, n0, lam = 16, 16, 0.25
        rates = compute_traffic_rates(c, n0, lam)
        p = rates.outgoing_probability
        assert rates.icn1 == pytest.approx(n0 * (1 - p) * lam)
        assert rates.ecn1_forward == pytest.approx(n0 * p * lam)
        assert rates.ecn1_return == pytest.approx(n0 * p * lam)
        assert rates.ecn1 == pytest.approx(2 * n0 * p * lam)
        assert rates.icn2 == pytest.approx(c * n0 * p * lam)

    def test_ecn1_return_is_icn2_divided_by_c(self):
        """Eq. (4): λ_E1^(2) = λ_I2 / C."""
        rates = compute_traffic_rates(8, 32, 0.5)
        assert rates.ecn1_return == pytest.approx(rates.icn2 / 8)

    def test_single_cluster_all_traffic_local(self):
        rates = compute_traffic_rates(1, 256, 0.25)
        assert rates.icn1 == pytest.approx(256 * 0.25)
        assert rates.ecn1 == 0.0
        assert rates.icn2 == 0.0

    def test_one_node_per_cluster_all_traffic_remote(self):
        rates = compute_traffic_rates(256, 1, 0.25)
        assert rates.icn1 == pytest.approx(0.0)
        assert rates.icn2 == pytest.approx(256 * 0.25)

    def test_rates_scale_linearly_with_lambda(self):
        base = compute_traffic_rates(4, 8, 0.25)
        double = compute_traffic_rates(4, 8, 0.5)
        assert double.icn1 == pytest.approx(2 * base.icn1)
        assert double.ecn1 == pytest.approx(2 * base.ecn1)
        assert double.icn2 == pytest.approx(2 * base.icn2)

    def test_explicit_outgoing_probability_override(self):
        rates = compute_traffic_rates(4, 8, 1.0, outgoing_prob=0.5)
        assert rates.outgoing_probability == 0.5
        assert rates.icn1 == pytest.approx(4.0)
        with pytest.raises(ConfigurationError):
            compute_traffic_rates(4, 8, 1.0, outgoing_prob=1.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_traffic_rates(4, 8, -0.1)

    def test_zero_rate(self):
        rates = compute_traffic_rates(4, 8, 0.0)
        assert rates.icn1 == rates.ecn1 == rates.icn2 == 0.0

    def test_total_network_load(self):
        rates = compute_traffic_rates(2, 4, 1.0)
        assert rates.total_network_load == pytest.approx(rates.icn1 + rates.ecn1 + rates.icn2)


class TestTrafficAgainstGenericJacksonSolver:
    """Cross-check the paper's hand-derived rates against the generic solver."""

    def test_supercluster_flow_balance(self):
        c, n0, lam = 4, 8, 0.25
        paper = compute_traffic_rates(c, n0, lam)
        p = paper.outgoing_probability

        # Build the equivalent open network: per-cluster ICN1 and ECN1 plus
        # one ICN2.  External arrivals model the processors of each cluster;
        # routing sends remote traffic ECN1 -> ICN2 -> ECN1 (uniformly over
        # the other clusters' ECN1s on the return path).
        net = JacksonNetwork()
        big = 1e9  # service rates are irrelevant for the traffic equations
        for i in range(c):
            net.add_center(ServiceCenter(f"icn1[{i}]", big))
            net.add_center(ServiceCenter(f"ecn1[{i}]", big))
        net.add_center(ServiceCenter("icn2", big))
        for i in range(c):
            net.set_external_arrival(f"icn1[{i}]", n0 * (1 - p) * lam)
            net.set_external_arrival(f"ecn1[{i}]", n0 * p * lam)
            net.set_routing(f"ecn1[{i}]", "icn2", 0.5)  # only forward visits continue
        # ICN2 output returns to each cluster's ECN1 with equal probability.
        for i in range(c):
            net.set_routing("icn2", f"ecn1[{i}]", 1.0 / c)
        solution = net.solve()

        # The forward ECN1 visit happens at rate N0·P·λ; the Jackson solver
        # then doubles it via the return path, matching Eq. (5).
        assert solution.arrival_rate("icn2") == pytest.approx(paper.icn2)
        assert solution.arrival_rate("ecn1[0]") == pytest.approx(paper.ecn1)
        assert solution.arrival_rate("icn1[0]") == pytest.approx(paper.icn1)
