"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_arguments(self):
        args = build_parser().parse_args(["figure", "4", "--simulate", "--clusters", "1", "4"])
        assert args.command == "figure"
        assert args.number == 4
        assert args.simulate
        assert args.clusters == [1, 4]

    def test_unknown_figure_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "3"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Case 1" in out or "case-1" in out
        assert "Figure 4" in out
        assert "0.25" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--case", "case-1", "--clusters", "8"]) == 0
        out = capsys.readouterr().out
        assert "Mean message latency" in out
        assert "Outgoing probability" in out

    def test_figure_analysis_only(self, capsys):
        code = main(["figure", "4", "--clusters", "1", "16", "--sizes", "1024", "--chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "analysis_ms" in out
        assert "legend" in out

    def test_figure_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig4.csv"
        code = main(["figure", "4", "--clusters", "1", "4", "--sizes", "512",
                     "--csv", str(csv_path)])
        assert code == 0
        assert csv_path.exists()
        assert "analysis_ms" in csv_path.read_text()

    def test_ablation(self, capsys):
        assert main(["ablation", "message-size"]) == 0
        out = capsys.readouterr().out
        assert "message-size" in out

    def test_validate_small(self, capsys):
        code = main([
            "validate", "--case", "case-1", "--clusters", "4",
            "--messages", "800", "--message-bytes", "512",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rel. error" in out

    def test_report_analysis_only(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        code = main(["report", "--clusters", "1", "8", "16", "32", "256",
                     "--output", str(out_path)])
        assert code == 0
        text = out_path.read_text()
        assert "# Reproduction report" in text
        assert "## Figure 4" in text
        assert "Blocking vs non-blocking ratio" in text

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
