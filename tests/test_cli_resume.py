"""The uniform `--resume` missing-journal error at the CLI boundary.

Every verb that accepts `--resume` must reject a nonexistent journal path
with the same one-line message *before* any computation starts —
historically each command surfaced it wherever its engine happened to be
built, which for lazily-built engines could be minutes into an analysis
pass.
"""

from __future__ import annotations

import pytest

from repro.cli import main

MISSING = "/nonexistent/dir/sweep.journal"
RESUME_CASES = [
    ["figure", "6", "--simulate", "--resume", MISSING],
    ["figure", "4", "--resume", MISSING],  # analysis-only: engine never built
    ["ratio", "--resume", MISSING],
    ["validate", "--resume", MISSING],
    ["ablation", "switch-ports", "--resume", MISSING],
    ["report", "--resume", MISSING],
    ["run", "case-1", "--resume", MISSING],
]


@pytest.mark.parametrize("argv", RESUME_CASES, ids=lambda argv: argv[0])
def test_missing_resume_journal_is_one_uniform_error(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    message = str(excinfo.value)
    assert message == f"--resume {MISSING}: no such journal (use --checkpoint to start one)"


def test_existing_journal_is_accepted(tmp_path, capsys):
    journal = tmp_path / "run.journal"
    code = main(
        ["run", "case-1", "--clusters", "2", "--sizes", "512", "--messages", "100",
         "--checkpoint", str(journal)]
    )
    assert code == 0
    assert journal.exists()
    code = main(
        ["run", "case-1", "--clusters", "2", "--sizes", "512", "--messages", "100",
         "--resume", str(journal)]
    )
    assert code == 0
