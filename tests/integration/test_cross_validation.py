"""Cross-validation tests tying the substrates together.

These tests check agreement *between* independent parts of the library:
the DES kernel against closed-form queueing theory, and the full analytical
model against a by-hand evaluation of the paper's equations.
"""

from __future__ import annotations

import pytest

from repro.cluster.presets import paper_evaluation_system
from repro.core.model import AnalyticalModel, ModelConfig
from repro.des.core import Environment
from repro.des.resources import Resource
from repro.des.rng import RandomStreams
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.queueing.mm1 import MM1Queue
from repro.queueing.mmc import MMCQueue
from repro.topology.fattree import fat_tree_stages


class TestKernelAgainstQueueingTheory:
    """Simulate M/M/1 and M/M/c with the DES kernel and compare to theory."""

    def _simulate_queue(self, arrival_rate, service_rate, servers, num_customers, seed=7):
        env = Environment()
        streams = RandomStreams(seed)
        arrivals = streams.stream("arrivals")
        services = streams.stream("services")
        server = Resource(env, capacity=servers)
        sojourn_times = []

        def customer(env, server):
            arrived = env.now
            with server.request() as req:
                yield req
                yield env.timeout(services.exponential_rate(service_rate))
            sojourn_times.append(env.now - arrived)

        def source(env):
            for _ in range(num_customers):
                yield env.timeout(arrivals.exponential_rate(arrival_rate))
                env.process(customer(env, server))

        env.process(source(env))
        env.run()
        # Discard the first 10% as warm-up.
        steady = sojourn_times[len(sojourn_times) // 10:]
        return sum(steady) / len(steady)

    def test_mm1_sojourn_time(self):
        lam, mu = 4.0, 10.0
        simulated = self._simulate_queue(lam, mu, servers=1, num_customers=40_000)
        theory = MM1Queue(lam, mu).mean_sojourn_time
        assert simulated == pytest.approx(theory, rel=0.05)

    def test_mm1_heavier_load(self):
        lam, mu = 8.0, 10.0
        simulated = self._simulate_queue(lam, mu, servers=1, num_customers=60_000, seed=11)
        theory = MM1Queue(lam, mu).mean_sojourn_time
        assert simulated == pytest.approx(theory, rel=0.10)

    def test_mmc_sojourn_time(self):
        lam, mu, c = 7.0, 3.0, 3
        simulated = self._simulate_queue(lam, mu, servers=c, num_customers=50_000, seed=13)
        theory = MMCQueue(lam, mu, c).mean_sojourn_time
        assert simulated == pytest.approx(theory, rel=0.07)


class TestModelAgainstHandComputation:
    """Evaluate the paper's equations by hand for one configuration."""

    def test_case1_nonblocking_c4_by_hand(self):
        # Configuration: Case-1, C = 4 clusters, N0 = 64, M = 512, λ = 0.25.
        C, N0, M, LAM = 4, 64, 512.0, 0.25
        system = paper_evaluation_system(C, GIGABIT_ETHERNET, FAST_ETHERNET)
        report = AnalyticalModel(
            system, ModelConfig(architecture="non-blocking", message_bytes=M)
        ).evaluate()

        # Eq. (8): routing probability.
        P = (C - 1) * N0 / (C * N0 - 1)
        assert report.outgoing_probability == pytest.approx(P)

        # Service times (Eq. 11) — ICN1 on GE with N0=64 nodes (d=2 for Pr=24),
        # ECN1 on FE with N0=64 (d=2), ICN2 on FE with C=4 (d=1).
        alpha_sw = 10e-6
        assert fat_tree_stages(64, 24) == 2
        assert fat_tree_stages(4, 24) == 1
        t_icn1 = 80e-6 + 3 * alpha_sw + M / 94e6
        t_ecn1 = 50e-6 + 3 * alpha_sw + M / 10.5e6
        t_icn2 = 50e-6 + 1 * alpha_sw + M / 10.5e6
        assert report.service_times["icn1"] == pytest.approx(t_icn1)
        assert report.service_times["ecn1"] == pytest.approx(t_ecn1)
        assert report.service_times["icn2"] == pytest.approx(t_icn2)

        # Eqs. (1)-(5) with the effective rate the model converged to.
        lam_eff = report.effective_rate
        lam_icn1 = N0 * (1 - P) * lam_eff
        lam_ecn1 = 2 * N0 * P * lam_eff
        lam_icn2 = C * N0 * P * lam_eff
        assert report.traffic.icn1 == pytest.approx(lam_icn1)
        assert report.traffic.ecn1 == pytest.approx(lam_ecn1)
        assert report.traffic.icn2 == pytest.approx(lam_icn2)

        # Eq. (16) waiting times and Eq. (15) latency.
        w_icn1 = 1.0 / (1.0 / t_icn1 - lam_icn1)
        w_ecn1 = 1.0 / (1.0 / t_ecn1 - lam_ecn1)
        w_icn2 = 1.0 / (1.0 / t_icn2 - lam_icn2)
        expected_latency = (1 - P) * w_icn1 + P * (w_icn2 + 2 * w_ecn1)
        assert report.mean_latency_s == pytest.approx(expected_latency, rel=1e-9)

        # The effective rate must also satisfy Eq. (7).
        l_icn1 = lam_icn1 * t_icn1 / (1 - lam_icn1 * t_icn1)
        l_ecn1 = lam_ecn1 * t_ecn1 / (1 - lam_ecn1 * t_ecn1)
        l_icn2 = lam_icn2 * t_icn2 / (1 - lam_icn2 * t_icn2)
        total_l = C * (2 * l_ecn1 + l_icn1) + l_icn2
        n_total = C * N0
        assert lam_eff == pytest.approx((n_total - total_l) / n_total * LAM, rel=1e-6)

    def test_case2_blocking_c16_by_hand(self):
        # Configuration: Case-2, C = 16, N0 = 16, M = 1024, blocking fabric.
        C, N0, M = 16, 16, 1024.0
        system = paper_evaluation_system(C, FAST_ETHERNET, GIGABIT_ETHERNET)
        report = AnalyticalModel(
            system, ModelConfig(architecture="blocking", message_bytes=M)
        ).evaluate()

        # Blocking service times (Eq. 21): k = ceil(N/Pr) = 1 for 16 nodes,
        # so the switch term is (1+1)/3 traversals; contention = (N/2)·M·β.
        t_icn1 = 50e-6 + (2.0 / 3.0) * 10e-6 + (N0 / 2) * M / 10.5e6          # FE inside
        t_ecn1 = 80e-6 + (2.0 / 3.0) * 10e-6 + (N0 / 2) * M / 94e6            # GE uplink
        t_icn2 = 80e-6 + (2.0 / 3.0) * 10e-6 + (C / 2) * M / 94e6             # GE backbone
        assert report.service_times["icn1"] == pytest.approx(t_icn1)
        assert report.service_times["ecn1"] == pytest.approx(t_ecn1)
        assert report.service_times["icn2"] == pytest.approx(t_icn2)

        # Latency composition (Eq. 15) with the reported waits.
        P = report.outgoing_probability
        expected = (1 - P) * report.waits.icn1 + P * (report.waits.icn2 + 2 * report.waits.ecn1)
        assert report.mean_latency_s == pytest.approx(expected, rel=1e-12)
