"""Integration tests: the full pipeline from system description to validated figures."""

from __future__ import annotations

import pytest

from repro import (
    ModelConfig,
    MultiClusterSimulator,
    SimulationConfig,
    paper_evaluation_system,
    run_figure,
    validate_against_analysis,
)
from repro.core.cluster_of_clusters import ClusterOfClustersModel, HeterogeneousModelConfig
from repro.experiments.scenarios import CASE_1, build_scenario_system
from repro.network import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.simulation.runner import run_replications


class TestAnalysisSimulationAgreement:
    """The paper's central validation claim, exercised across the design space."""

    @pytest.mark.parametrize("architecture", ["non-blocking", "blocking"])
    @pytest.mark.parametrize("num_clusters", [2, 8])
    def test_agreement_small_systems(self, architecture, num_clusters):
        system = paper_evaluation_system(
            num_clusters, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32
        )
        model_config = ModelConfig(architecture=architecture, message_bytes=1024)
        sim_config = SimulationConfig(
            architecture=architecture, message_bytes=1024, num_messages=2500, seed=17
        )
        point = validate_against_analysis(system, model_config, sim_config)
        assert point.relative_error < 0.12, (
            f"analysis {point.analysis_latency_ms:.4f} ms vs "
            f"simulation {point.simulation_latency_ms:.4f} ms"
        )

    def test_agreement_case2(self):
        system = paper_evaluation_system(
            4, FAST_ETHERNET, GIGABIT_ETHERNET, total_processors=32
        )
        point = validate_against_analysis(
            system,
            ModelConfig(architecture="non-blocking", message_bytes=512),
            SimulationConfig(architecture="non-blocking", message_bytes=512,
                             num_messages=2500, seed=23),
        )
        assert point.relative_error < 0.12

    def test_paper_scale_point_case1(self):
        """One full-scale (256-node) point with the paper's 10k messages would be slow;
        2 500 messages is enough for a tight check at this load."""
        system = build_scenario_system(CASE_1, 16)
        point = validate_against_analysis(
            system,
            ModelConfig(architecture="non-blocking", message_bytes=1024),
            SimulationConfig(architecture="non-blocking", message_bytes=1024,
                             num_messages=2500, seed=31),
        )
        assert point.relative_error < 0.10

    def test_replications_reduce_variance(self):
        system = paper_evaluation_system(
            4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32
        )
        config = SimulationConfig(num_messages=1200, seed=41)
        replicated = run_replications(system, config, replications=3)
        assert replicated.latency_interval is not None
        assert replicated.latency_interval.half_width < replicated.mean_latency_s


class TestFigurePipelines:
    def test_figure_shapes_match_paper_qualitatively(self):
        """Check the qualitative claims of §6 on a reduced sweep:

        * latency grows from C=1 to C=256 for the non-blocking network,
        * the C=16 point dips below its neighbours (single-stage switches),
        * M=1024 curves lie above M=512 curves,
        * blocking figures lie above non-blocking figures.
        """
        counts = [1, 8, 16, 32, 256]
        fig4 = run_figure(4, include_simulation=False, cluster_counts=counts)
        fig6 = run_figure(6, include_simulation=False, cluster_counts=counts)

        for size in (512, 1024):
            series = [p.analysis_latency_ms for p in fig4.points_for_size(size)]
            assert series[-1] > series[0]                  # growth with C
            by_count = dict(zip(counts, series))
            assert by_count[16] < by_count[8]              # the C=16 dip
            assert by_count[16] < by_count[32]

        for c in counts:
            p512 = next(p for p in fig4.points if p.num_clusters == c and p.message_bytes == 512)
            p1024 = next(p for p in fig4.points if p.num_clusters == c and p.message_bytes == 1024)
            assert p1024.analysis_latency_ms > p512.analysis_latency_ms

        for p_nb, p_b in zip(fig4.points, fig6.points):
            assert p_b.analysis_latency_ms > p_nb.analysis_latency_ms

    def test_case1_vs_case2_crossover(self):
        """Case-1 (fast ICN1) wins at C=1; Case-2 (fast ECN/ICN2) wins at C=256."""
        fig4 = run_figure(4, include_simulation=False, cluster_counts=[1, 256],
                          message_sizes=[1024])
        fig5 = run_figure(5, include_simulation=False, cluster_counts=[1, 256],
                          message_sizes=[1024])
        case1 = {p.num_clusters: p.analysis_latency_ms for p in fig4.points}
        case2 = {p.num_clusters: p.analysis_latency_ms for p in fig5.points}
        assert case1[1] < case2[1]
        assert case1[256] > case2[256]

    def test_figure_with_simulation_consistency(self):
        result = run_figure(
            4,
            include_simulation=True,
            cluster_counts=[2, 16],
            message_sizes=[1024],
            simulation_messages=1500,
            seed=3,
        )
        summary = result.accuracy_summary()
        assert summary is not None
        assert summary.mape_percent < 15.0


class TestHeterogeneousExtensionAgainstSimulator:
    def test_cluster_of_clusters_model_tracks_simulation(self):
        """The future-work extension must agree with the (general) simulator."""
        from repro.cluster.system import MultiClusterSystem

        system = MultiClusterSystem.from_cluster_sizes(
            sizes=[8, 16, 24],
            icn_technologies=[GIGABIT_ETHERNET, GIGABIT_ETHERNET, FAST_ETHERNET],
            ecn_technologies=[FAST_ETHERNET, FAST_ETHERNET, GIGABIT_ETHERNET],
            icn2_technology=FAST_ETHERNET,
        )
        analysis = ClusterOfClustersModel(
            system, HeterogeneousModelConfig(architecture="non-blocking", message_bytes=1024)
        ).evaluate()
        sim = MultiClusterSimulator(
            system,
            SimulationConfig(architecture="non-blocking", message_bytes=1024,
                             num_messages=3000, seed=13),
        ).run()
        relative_error = abs(analysis.mean_latency_s - sim.mean_latency_s) / sim.mean_latency_s
        assert relative_error < 0.12
