"""Unit tests for ASCII charts and table/CSV writers."""

from __future__ import annotations

import math

import pytest

from repro.viz.ascii_chart import bar_chart, line_chart
from repro.viz.tables import (
    format_fixed_width_table,
    format_markdown_table,
    rows_to_csv_text,
    write_csv,
)


class TestLineChart:
    def test_basic_rendering(self):
        chart = line_chart(
            [1, 2, 4, 8],
            {"analysis": [1.0, 2.0, 3.0, 4.0], "simulation": [1.1, 2.1, 2.9, 4.2]},
            width=40,
            height=10,
            title="Latency",
            x_label="clusters",
            y_label="ms",
        )
        assert "Latency" in chart
        assert "legend" in chart
        assert "o analysis" in chart
        assert "x simulation" in chart
        assert "clusters" in chart

    def test_log_x_axis(self):
        chart = line_chart([1, 2, 4, 8, 256], {"s": [1, 2, 3, 4, 5]}, logx=True,
                           width=30, height=8)
        assert "1" in chart and "256" in chart

    def test_empty_data(self):
        assert line_chart([], {}) == "(no data)"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1.0]})

    def test_too_small_chart_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1.0, 2.0]}, width=5, height=2)

    def test_constant_series(self):
        chart = line_chart([1, 2, 3], {"flat": [2.0, 2.0, 2.0]}, width=20, height=6)
        assert "flat" in chart

    def test_nan_values_skipped(self):
        chart = line_chart([1, 2, 3], {"s": [1.0, math.nan, 3.0]}, width=20, height=6)
        assert "legend" in chart

    def test_all_nan(self):
        assert "no finite data" in line_chart([1, 2], {"s": [math.nan, math.nan]})


class TestBarChart:
    def test_basic(self):
        chart = bar_chart(["icn1", "ecn1", "icn2"], [0.1, 0.5, 0.9], title="util")
        assert "util" in chart
        assert "icn2" in chart
        assert "#" in chart

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == "(no data)"

    def test_zero_values(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in chart


class TestTables:
    ROWS = [
        {"clusters": 1, "latency_ms": 0.1218, "case": "case-1"},
        {"clusters": 256, "latency_ms": 0.4946, "case": "case-1"},
    ]

    def test_markdown_table(self):
        table = format_markdown_table(self.ROWS)
        assert table.startswith("| clusters | latency_ms | case |")
        assert "| --- |" in table
        assert "case-1" in table

    def test_markdown_column_selection(self):
        table = format_markdown_table(self.ROWS, columns=["clusters"])
        assert "latency_ms" not in table

    def test_markdown_empty(self):
        assert format_markdown_table([]) == "(no data)"

    def test_fixed_width_table_alignment(self):
        table = format_fixed_width_table(self.ROWS)
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) <= len(lines[0]) + 20 for line in lines)) >= 1
        assert "clusters" in lines[0]

    def test_float_formatting(self):
        rows = [{"x": 0.000012345, "y": 123456.789, "z": 0.5}]
        text = format_markdown_table(rows)
        assert "1.234e-05" in text or "1.235e-05" in text
        assert "0.5" in text

    def test_csv_text(self):
        csv_text = rows_to_csv_text(self.ROWS)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "clusters,latency_ms,case"
        assert len(lines) == 3
        assert rows_to_csv_text([]) == ""

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), self.ROWS)
        content = path.read_text()
        assert "clusters" in content
        assert "256" in content
