"""Unit tests for confidence intervals, warm-up detection, histograms and comparison metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.stats.compare import (
    absolute_error,
    compare_series,
    max_relative_error,
    mean_absolute_percentage_error,
    relative_error,
    root_mean_square_error,
)
from repro.stats.histogram import Histogram, LogHistogram
from repro.stats.intervals import batch_means, mean_confidence_interval, t_quantile
from repro.stats.warmup import moving_average_crossing, mser5_truncation, truncate_warmup


class TestTQuantile:
    def test_matches_known_values(self):
        # Classic t-table values.
        assert t_quantile(0.95, 10) == pytest.approx(2.228, abs=0.01)
        assert t_quantile(0.95, 30) == pytest.approx(2.042, abs=0.01)
        assert t_quantile(0.99, 20) == pytest.approx(2.845, abs=0.01)

    def test_approaches_normal_for_large_dof(self):
        assert t_quantile(0.95, 100_000) == pytest.approx(1.96, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            t_quantile(1.5, 10)
        with pytest.raises(ValueError):
            t_quantile(0.95, 0)


class TestConfidenceIntervals:
    def test_basic_interval(self):
        data = [10.0, 12.0, 9.0, 11.0, 13.0, 10.0, 12.0, 11.0]
        ci = mean_confidence_interval(data, confidence=0.95)
        assert ci.mean == pytest.approx(float(np.mean(data)))
        assert ci.lower < ci.mean < ci.upper
        assert ci.contains(ci.mean)
        assert ci.sample_size == 8

    def test_single_observation_infinite_width(self):
        ci = mean_confidence_interval([5.0])
        assert math.isinf(ci.half_width)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_higher_confidence_wider(self):
        data = list(np.random.default_rng(3).random(50))
        assert (
            mean_confidence_interval(data, 0.99).half_width
            > mean_confidence_interval(data, 0.90).half_width
        )

    def test_coverage_of_known_mean(self):
        """95% CI should contain the true mean roughly 95% of the time."""
        rng = np.random.default_rng(4)
        hits = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(10.0, 2.0, size=30)
            if mean_confidence_interval(sample, 0.95).contains(10.0):
                hits += 1
        assert hits / trials > 0.88

    def test_relative_half_width_and_str(self):
        ci = mean_confidence_interval([10.0, 10.5, 9.5, 10.2])
        assert 0 < ci.relative_half_width < 1
        assert "95%" in str(ci)

    def test_batch_means_requires_enough_data(self):
        with pytest.raises(ValueError):
            batch_means([1.0, 2.0], num_batches=10)
        with pytest.raises(ValueError):
            batch_means(list(range(100)), num_batches=1)

    def test_batch_means_interval_reasonable(self):
        rng = np.random.default_rng(5)
        data = rng.exponential(2.0, size=2000)
        ci = batch_means(data, num_batches=20)
        assert ci.mean == pytest.approx(2.0, rel=0.1)
        assert ci.sample_size == 20

    def test_batch_means_drops_no_observation(self):
        """Regression: the tail remainder folds into the final batch."""
        # 107 = 5 batches of 21 + remainder 2; the old code silently dropped
        # the last 2 observations.  With equal-size head batches the grand
        # batch-mean average weighted by batch length must equal the overall
        # mean of *all* observations.
        data = np.arange(107, dtype=float)
        num_batches = 5
        ci = batch_means(data, num_batches=num_batches)
        batch_size = data.size // num_batches
        head = batch_size * (num_batches - 1)
        expected_means = [
            data[i * batch_size:(i + 1) * batch_size].mean()
            for i in range(num_batches - 1)
        ] + [data[head:].mean()]
        assert ci.mean == pytest.approx(np.mean(expected_means))
        # The final batch's observations (including the tail) are all used:
        # shifting only the tail values must change the interval.
        shifted = data.copy()
        shifted[-2:] += 1000.0
        assert batch_means(shifted, num_batches=num_batches).mean != ci.mean

    def test_batch_means_exact_multiple_unchanged(self):
        data = np.arange(100, dtype=float)
        ci = batch_means(data, num_batches=5)
        assert ci.mean == pytest.approx(data.mean())
        assert ci.sample_size == 5


class TestWarmup:
    def test_mser5_detects_transient(self):
        # Initial transient at a high value, then steady state around 1.0.
        rng = np.random.default_rng(6)
        transient = 50.0 * np.exp(-np.arange(100) / 20.0)
        steady = rng.normal(1.0, 0.1, size=900)
        data = np.concatenate([transient + 1.0, steady])
        cutoff = mser5_truncation(data)
        assert 20 <= cutoff <= 300

    def test_mser5_no_transient_small_cutoff(self):
        rng = np.random.default_rng(7)
        data = rng.normal(5.0, 1.0, size=500)
        assert mser5_truncation(data) <= 125  # at most a modest fraction

    def test_mser5_short_sequence(self):
        assert mser5_truncation([1.0, 2.0]) == 0

    def test_mser5_validation(self):
        with pytest.raises(ValueError):
            mser5_truncation([1.0] * 100, batch_size=0)

    def test_moving_average_crossing(self):
        data = np.concatenate([np.full(200, 10.0), np.full(800, 1.0)])
        cutoff = moving_average_crossing(data, window=50)
        assert cutoff > 0

    def test_moving_average_short_sequence(self):
        assert moving_average_crossing([1.0, 2.0, 3.0], window=50) == 0

    def test_truncate_warmup_methods(self):
        data = list(np.linspace(10, 1, 200)) + [1.0] * 800
        for method in ("mser5", "welch", "none"):
            steady, cutoff = truncate_warmup(data, method=method)
            assert len(steady) + cutoff == len(data)
            assert len(steady) >= 10
        with pytest.raises(ValueError):
            truncate_warmup(data, method="bogus")

    def test_truncate_keeps_minimum_observations(self):
        data = [100.0] * 15
        steady, cutoff = truncate_warmup(data, method="mser5")
        assert len(steady) >= 10


class TestHistogram:
    def test_binning(self):
        hist = Histogram(0.0, 10.0, bins=10)
        hist.add(0.5)
        hist.add(9.99)
        hist.add(-1.0)
        hist.add(10.0)
        assert hist.counts[0] == 1
        assert hist.counts[9] == 1
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.total == 4

    def test_add_many_matches_add(self):
        values = np.random.default_rng(8).uniform(0, 10, size=1000)
        a = Histogram(0.0, 10.0, bins=20)
        b = Histogram(0.0, 10.0, bins=20)
        for v in values:
            a.add(v)
        b.add_many(values)
        assert np.array_equal(a.counts, b.counts)

    def test_normalized_sums_to_one(self):
        hist = Histogram(0.0, 1.0, bins=4)
        hist.add_many([0.1, 0.3, 0.6, 0.9])
        assert hist.normalized().sum() == pytest.approx(1.0)

    def test_quantile(self):
        hist = Histogram(0.0, 100.0, bins=100)
        hist.add_many(np.linspace(0, 99.9, 1000))
        assert hist.quantile(0.5) == pytest.approx(50.0, abs=2.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_zero_without_underflow_hits_first_occupied_bin(self):
        # Regression: with an empty underflow bucket, running >= target is
        # 0 >= 0 and q=0 wrongly returned ``low`` instead of the centre of
        # the first occupied bin.
        hist = Histogram(0.0, 10.0, bins=10)
        hist.add_many([3.5, 4.5, 7.5])
        assert hist.quantile(0.0) == pytest.approx(3.5)
        assert hist.quantile(1.0) == pytest.approx(7.5)

    def test_quantile_zero_with_underflow_returns_low(self):
        hist = Histogram(0.0, 10.0, bins=10)
        hist.add(-1.0)
        hist.add(5.5)
        assert hist.quantile(0.0) == 0.0

    def test_quantile_empty_histogram_is_nan(self):
        assert np.isnan(Histogram(0.0, 10.0, bins=10).quantile(0.5))

    def test_nan_observations_rejected_consistently(self):
        # add() and add_many() must agree: NaN is an error, never silently
        # dropped (add_many) or binned into the top bin (LogHistogram.add).
        for hist in (Histogram(0.0, 10.0, bins=10), LogHistogram(1e-6, 1.0)):
            with pytest.raises(ValueError):
                hist.add(float("nan"))
            with pytest.raises(ValueError):
                hist.add_many([1e-3, float("nan")])
            assert hist.total == 0

    def test_merge(self):
        a = Histogram(0.0, 10.0, bins=5)
        b = Histogram(0.0, 10.0, bins=5)
        a.add(1.0)
        b.add(9.0)
        merged = a.merge(b)
        assert merged.total == 2
        with pytest.raises(ValueError):
            a.merge(Histogram(0.0, 20.0, bins=5))

    def test_bin_edges_and_centers(self):
        hist = Histogram(0.0, 10.0, bins=10)
        assert len(hist.bin_edges()) == 11
        assert len(hist.bin_centers()) == 10
        assert hist.bin_centers()[0] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(5.0, 1.0)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, bins=0)

    def test_log_histogram(self):
        hist = LogHistogram(1e-6, 1.0, bins_per_decade=5)
        hist.add(1e-5)
        hist.add(0.5)
        hist.add(1e-7)   # underflow
        hist.add(2.0)    # overflow
        assert hist.total == 4
        assert hist.counts.sum() == 2
        assert len(hist.bin_edges()) == hist.bins + 1

    def test_log_histogram_validation(self):
        with pytest.raises(ValueError):
            LogHistogram(0.0, 1.0)
        with pytest.raises(ValueError):
            LogHistogram(1.0, 0.5)

    def test_log_histogram_add_many_matches_add(self):
        values = np.random.default_rng(9).uniform(1e-6, 2.0, size=500)
        a = LogHistogram(1e-5, 1.0, bins_per_decade=7)
        b = LogHistogram(1e-5, 1.0, bins_per_decade=7)
        for v in values:
            a.add(v)
        b.add_many(values)
        assert np.array_equal(a.counts, b.counts)
        assert a.underflow == b.underflow
        assert a.overflow == b.overflow

    def test_log_histogram_merge(self):
        a = LogHistogram(1e-6, 1.0, bins_per_decade=5)
        b = LogHistogram(1e-6, 1.0, bins_per_decade=5)
        a.add(1e-5)
        a.add(2.0)
        b.add(1e-5)
        b.add(1e-7)
        merged = a.merge(b)
        assert merged.total == 4
        assert merged.underflow == 1
        assert merged.overflow == 1
        assert merged.counts.sum() == 2
        with pytest.raises(ValueError):
            a.merge(LogHistogram(1e-5, 1.0, bins_per_decade=5))
        with pytest.raises(ValueError):
            a.merge(LogHistogram(1e-6, 1.0, bins_per_decade=9))


class TestComparisonMetrics:
    def test_relative_and_absolute_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert absolute_error(11.0, 10.0) == pytest.approx(1.0)
        assert math.isnan(relative_error(1.0, 0.0))

    def test_mape(self):
        assert mean_absolute_percentage_error([11.0, 9.0], [10.0, 10.0]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([], [])

    def test_rmse(self):
        assert root_mean_square_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(math.sqrt(2.0))

    def test_max_relative_error(self):
        assert max_relative_error([11.0, 12.0], [10.0, 10.0]) == pytest.approx(0.2)

    def test_compare_series_summary(self):
        summary = compare_series([1.0, 2.0, 3.0], [1.1, 2.2, 2.7])
        assert summary.n_points == 3
        assert summary.mape_percent > 0
        assert "MAPE" in str(summary)
        assert set(summary.as_dict()) == {"mape_percent", "rmse", "max_relative_error", "n_points"}

    def test_perfect_prediction(self):
        summary = compare_series([1.0, 2.0], [1.0, 2.0])
        assert summary.mape_percent == pytest.approx(0.0)
        assert summary.rmse == pytest.approx(0.0)
