"""Unit tests for online statistics accumulators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.stats.online import ExponentialMovingAverage, RunningCovariance, RunningStatistics


class TestRunningStatistics:
    def test_empty_is_nan(self):
        stats = RunningStatistics()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.variance)
        assert math.isnan(stats.minimum)
        assert stats.count == 0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 2.0, size=1000)
        stats = RunningStatistics()
        stats.push_many(data)
        assert stats.count == 1000
        assert stats.mean == pytest.approx(float(np.mean(data)))
        assert stats.variance == pytest.approx(float(np.var(data, ddof=1)))
        assert stats.std == pytest.approx(float(np.std(data, ddof=1)))
        assert stats.minimum == pytest.approx(float(np.min(data)))
        assert stats.maximum == pytest.approx(float(np.max(data)))
        assert stats.total == pytest.approx(float(np.sum(data)))

    def test_single_observation(self):
        stats = RunningStatistics()
        stats.push(3.0)
        assert stats.mean == 3.0
        assert math.isnan(stats.variance)
        assert stats.population_variance == 0.0

    def test_standard_error(self):
        stats = RunningStatistics()
        stats.push_many([1.0, 2.0, 3.0, 4.0])
        expected = np.std([1, 2, 3, 4], ddof=1) / 2.0
        assert stats.standard_error == pytest.approx(float(expected))

    def test_merge_equivalent_to_combined(self):
        rng = np.random.default_rng(1)
        a_data, b_data = rng.random(500), rng.random(300) * 10
        a, b = RunningStatistics(), RunningStatistics()
        a.push_many(a_data)
        b.push_many(b_data)
        merged = a.merge(b)
        combined = np.concatenate([a_data, b_data])
        assert merged.count == 800
        assert merged.mean == pytest.approx(float(np.mean(combined)))
        assert merged.variance == pytest.approx(float(np.var(combined, ddof=1)))
        assert merged.minimum == pytest.approx(float(np.min(combined)))

    def test_merge_with_empty(self):
        a = RunningStatistics()
        a.push_many([1.0, 2.0])
        merged = a.merge(RunningStatistics())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)

    def test_merge_type_check(self):
        with pytest.raises(TypeError):
            RunningStatistics().merge([1, 2, 3])  # type: ignore[arg-type]

    def test_numerical_stability_large_offset(self):
        """Welford should not cancel catastrophically with a large mean offset."""
        offset = 1e9
        data = [offset + v for v in (1.0, 2.0, 3.0, 4.0)]
        stats = RunningStatistics()
        stats.push_many(data)
        assert stats.variance == pytest.approx(5.0 / 3.0, rel=1e-6)


class TestRunningCovariance:
    def test_matches_numpy(self):
        rng = np.random.default_rng(2)
        x = rng.random(500)
        y = 2.0 * x + rng.normal(0, 0.1, 500)
        cov = RunningCovariance()
        for xi, yi in zip(x, y):
            cov.push(xi, yi)
        assert cov.count == 500
        assert cov.covariance == pytest.approx(float(np.cov(x, y, ddof=1)[0, 1]), rel=1e-9)
        assert cov.correlation == pytest.approx(float(np.corrcoef(x, y)[0, 1]), rel=1e-9)

    def test_too_few_observations(self):
        cov = RunningCovariance()
        cov.push(1.0, 2.0)
        assert math.isnan(cov.covariance)
        assert math.isnan(cov.correlation)

    def test_perfect_correlation(self):
        cov = RunningCovariance()
        for i in range(10):
            cov.push(float(i), 3.0 * i + 1.0)
        assert cov.correlation == pytest.approx(1.0)


class TestExponentialMovingAverage:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(alpha=1.5)

    def test_first_value_initialises(self):
        ema = ExponentialMovingAverage(alpha=0.5)
        assert math.isnan(ema.value)
        ema.push(10.0)
        assert ema.value == 10.0

    def test_smoothing(self):
        ema = ExponentialMovingAverage(alpha=0.5)
        ema.push(0.0)
        ema.push(10.0)
        assert ema.value == pytest.approx(5.0)
        ema.push(10.0)
        assert ema.value == pytest.approx(7.5)

    def test_alpha_one_tracks_last_value(self):
        ema = ExponentialMovingAverage(alpha=1.0)
        for v in [1.0, 5.0, -2.0]:
            ema.push(v)
        assert ema.value == -2.0
