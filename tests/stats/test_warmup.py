"""Tests for the warm-up (initial-transient) detection module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.warmup import moving_average_crossing, mser5_truncation, truncate_warmup


class TestMser5:
    def test_constant_series_needs_no_truncation(self):
        assert mser5_truncation([7.0] * 100) == 0

    def test_series_shorter_than_two_batches_returns_zero(self):
        assert mser5_truncation([1.0, 2.0, 3.0], batch_size=5) == 0
        assert mser5_truncation([1.0] * 9, batch_size=5) == 0

    def test_empty_series_returns_zero(self):
        assert mser5_truncation([]) == 0

    def test_detects_initial_transient(self):
        # Two inflated batches followed by a flat steady state: MSER-5
        # should delete exactly the transient batches.
        data = [50.0] * 10 + [1.0] * 90
        assert mser5_truncation(data, batch_size=5) == 10

    def test_result_counts_observations_not_batches(self):
        data = [50.0] * 10 + [1.0] * 90
        assert mser5_truncation(data, batch_size=10) == 10

    def test_truncation_capped_at_half_the_run(self):
        # Even a strictly decreasing (never stabilising) series may lose at
        # most half of its batches.
        data = list(range(100, 0, -1))
        cutoff = mser5_truncation(data, batch_size=5)
        assert cutoff <= 50

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            mser5_truncation([1.0, 2.0], batch_size=0)


class TestMovingAverageCrossing:
    def test_constant_series_returns_zero(self):
        assert moving_average_crossing([3.0] * 400, window=50) == 0

    def test_short_series_returns_zero(self):
        assert moving_average_crossing([1.0, 5.0, 2.0], window=50) == 0
        assert moving_average_crossing(list(range(199)), window=50) == 0

    def test_zero_initial_gap_returns_zero(self):
        # The smoothed series starts exactly on the steady-state mean
        # (alternating values whose window average equals the global mean):
        # there is no transient side to cross from.
        data = [0.0, 10.0] * 200
        assert moving_average_crossing(data, window=2) == 0

    def test_detects_transient_crossing(self):
        data = [10.0] * 60 + [0.0] * 140
        cutoff = moving_average_crossing(data, window=50)
        assert cutoff == 60

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            moving_average_crossing([1.0] * 100, window=0)


class TestTruncateWarmup:
    def test_method_none_keeps_everything(self):
        steady, cutoff = truncate_warmup([5.0, 6.0, 7.0], method="none")
        assert cutoff == 0
        assert list(steady) == [5.0, 6.0, 7.0]

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            truncate_warmup([1.0] * 20, method="astrology")

    def test_mser5_delegation(self):
        data = [50.0] * 10 + [1.0] * 90
        steady, cutoff = truncate_warmup(data, method="mser5")
        assert cutoff == 10
        assert np.all(steady == 1.0)

    def test_welch_delegation(self):
        data = [10.0] * 60 + [0.0] * 140
        steady, cutoff = truncate_warmup(data, method="welch", window=50)
        assert cutoff == 60
        assert steady.size == 140

    def test_never_deletes_below_ten_survivors(self):
        # A transient occupying nearly the whole run must be clamped so at
        # least 10 observations remain.
        data = [50.0] * 10 + [1.0] * 5
        steady, cutoff = truncate_warmup(data, method="mser5")
        assert steady.size >= 10
        assert cutoff <= len(data) - 10
