"""Streaming-parity property tests for the pluggable stats sinks.

The acceptance contract of the streaming observation layer: for the same
observation stream, :class:`OnlineMonitor` must agree with the array-backed
:class:`Monitor` *exactly* on ``count``/``min``/``max``/``total`` and to
within 1e-9 relative on ``mean``/``std`` and the batch-means confidence
interval — across adversarial streams (constant, heavy-tailed,
warmup-truncated).  Merging partial sinks (how a sharded backend combines
results) must be associative.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.des.monitor import Monitor
from repro.stats.histogram import Histogram
from repro.stats.intervals import batch_means
from repro.stats.online import RunningStatistics
from repro.stats.sinks import (
    STATS_MODES,
    OnlineMonitor,
    StatsSink,
    validate_stats_mode,
)

BATCHES = 20
PARITY_REL = 1e-9


def _rel(a: float, b: float) -> float:
    """Relative difference with an absolute floor for near-zero references."""
    return abs(a - b) / max(abs(b), 1e-300)


def _adversarial_streams():
    """Named adversarial observation streams of the acceptance criteria."""
    rng = np.random.default_rng(20260808)
    constant = np.full(5_000, 3.25e-4)
    heavy = rng.pareto(1.3, size=5_000) * 1e-3 + 1e-6  # infinite-variance tail
    lognormal = rng.lognormal(mean=-8.0, sigma=2.5, size=5_000)
    full = rng.exponential(2.5e-4, size=6_000)
    warmup_truncated = full[1_000:]  # what LatencySink feeds after the cut
    # Mean/std ratio of 1e6 stresses cancellation; Welford holds ~1e-14
    # relative here (a naive sum-of-squares accumulator would lose half the
    # mantissa).
    offset = rng.normal(1e6, 1.0, size=5_000)
    return {
        "constant": constant,
        "pareto-heavy-tail": heavy,
        "lognormal": lognormal,
        "warmup-truncated": warmup_truncated,
        "large-offset": offset,
    }


STREAMS = _adversarial_streams()


def _filled_pair(values: np.ndarray):
    """An array Monitor and an OnlineMonitor fed the identical stream."""
    mon = Monitor("latency")
    online = OnlineMonitor(
        "latency", batch_count=BATCHES, expected_count=len(values)
    )
    for i, v in enumerate(values):
        mon.record(float(i), float(v))
        online.record(float(i), float(v))
    return mon, online


class TestStatsModeKnob:
    def test_modes(self):
        assert STATS_MODES == ("array", "online")
        for mode in STATS_MODES:
            assert validate_stats_mode(mode) == mode

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="stats_mode"):
            validate_stats_mode("rolling")

    def test_both_sinks_satisfy_protocol(self):
        assert isinstance(Monitor(), StatsSink)
        assert isinstance(OnlineMonitor(), StatsSink)


class TestOnlineArrayParity:
    """Exactness contract of the online sink vs the array sink."""

    @pytest.mark.parametrize("name", sorted(STREAMS))
    def test_count_min_max_total_exact(self, name):
        values = STREAMS[name]
        mon, online = _filled_pair(values)
        assert online.count == mon.count == len(values)
        # Exact — compared by hex, not approx.
        assert online.minimum().hex() == mon.minimum().hex()
        assert online.maximum().hex() == mon.maximum().hex()
        assert online.total == float(values.sum()) or _rel(
            online.total, float(values.sum())
        ) < PARITY_REL

    @pytest.mark.parametrize("name", sorted(STREAMS))
    def test_mean_std_within_1e9_relative(self, name):
        values = STREAMS[name]
        mon, online = _filled_pair(values)
        assert _rel(online.mean(), mon.mean()) < PARITY_REL
        if name == "constant":
            # Welford is exactly 0 on a constant stream; NumPy's pairwise
            # summation leaves ~1e-20 of rounding dust.  Both are "zero" at
            # the scale of the data.
            scale = abs(mon.mean())
            assert online.std() <= scale * 1e-12
            assert mon.std() <= scale * 1e-12
        else:
            assert _rel(online.std(), mon.std()) < PARITY_REL
            assert _rel(online.variance(), mon.variance()) < PARITY_REL

    @pytest.mark.parametrize("name", sorted(STREAMS))
    def test_batch_means_interval_within_1e9_relative(self, name):
        values = STREAMS[name]
        mon, online = _filled_pair(values)
        ref = batch_means(values, num_batches=BATCHES)
        arr = mon.batch_means_interval(BATCHES)
        onl = online.batch_means_interval(BATCHES)
        # The array sink delegates to batch_means, so it is bit-identical.
        assert arr.mean.hex() == ref.mean.hex()
        assert arr.half_width.hex() == ref.half_width.hex()
        assert _rel(onl.mean, ref.mean) < PARITY_REL
        if ref.half_width > 0:
            assert _rel(onl.half_width, ref.half_width) < PARITY_REL
        else:
            assert onl.half_width == pytest.approx(0.0, abs=1e-18)

    @pytest.mark.parametrize("name", sorted(STREAMS))
    def test_summary_keys_match_array_sink(self, name):
        mon, online = _filled_pair(STREAMS[name])
        assert set(online.summary()) == set(mon.summary())

    def test_percentiles_exact_while_calibrating(self):
        values = STREAMS["lognormal"][:512]  # below calibration_samples
        mon, online = _filled_pair(values)
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert online.percentile(q) == mon.percentile(q)

    def test_percentiles_within_one_bin_after_freeze(self):
        values = STREAMS["lognormal"]
        mon, online = _filled_pair(values)
        res = online.quantile_resolution
        assert res > 0 and math.isfinite(res)
        for q in (50.0, 95.0, 99.0):
            exact = mon.percentile(q)
            approx = online.percentile(q)
            # One bin of slack, plus clamped to the exact extrema.
            assert abs(approx - exact) <= res
            assert online.minimum() <= approx <= online.maximum()


class TestBatchLayout:
    def test_final_batch_absorbs_remainder_like_array_path(self):
        # 103 observations over 20 batches: bs=5, final batch holds 8.
        values = np.linspace(1.0, 103.0, 103)
        online = OnlineMonitor("x", batch_count=BATCHES, expected_count=103)
        for i, v in enumerate(values):
            online.record(float(i), float(v))
        ref = batch_means(values, num_batches=BATCHES)
        got = online.batch_means_interval(BATCHES)
        assert _rel(got.mean, ref.mean) < PARITY_REL
        assert _rel(got.half_width, ref.half_width) < PARITY_REL

    def test_wrong_batch_count_rejected(self):
        online = OnlineMonitor("x", batch_count=10, expected_count=100)
        for i in range(100):
            online.record(float(i), 1.0)
        with pytest.raises(ValueError, match="10 batches"):
            online.batch_means_interval(20)

    def test_unconfigured_sink_rejects_interval(self):
        online = OnlineMonitor("x")
        online.record(0.0, 1.0)
        with pytest.raises(ValueError, match="without batch-means"):
            online.batch_means_interval(20)

    def test_too_few_observations_rejected(self):
        online = OnlineMonitor("x", batch_count=20, expected_count=100)
        for i in range(5):
            online.record(float(i), 1.0)
        with pytest.raises(ValueError, match="at least 20"):
            online.batch_means_interval(20)

    def test_batch_config_must_come_paired(self):
        with pytest.raises(ValueError, match="together"):
            OnlineMonitor("x", batch_count=20)
        with pytest.raises(ValueError, match="together"):
            OnlineMonitor("x", expected_count=100)


class TestMergeAssociativity:
    """Backend-split combining: merges must not depend on shard boundaries."""

    def test_running_statistics_merge_associative(self):
        rng = np.random.default_rng(7)
        chunks = [rng.lognormal(0.0, 2.0, size=n) for n in (313, 1, 997, 40)]
        shards = []
        for chunk in chunks:
            s = RunningStatistics()
            s.push_many(chunk)
            shards.append(s)
        left = shards[0].merge(shards[1]).merge(shards[2]).merge(shards[3])
        right = shards[0].merge(shards[1].merge(shards[2].merge(shards[3])))
        whole = RunningStatistics()
        whole.push_many(np.concatenate(chunks))
        for merged in (left, right):
            assert merged.count == whole.count
            assert merged.minimum == whole.minimum
            assert merged.maximum == whole.maximum
            assert _rel(merged.mean, whole.mean) < PARITY_REL
            assert _rel(merged.variance, whole.variance) < PARITY_REL

    def test_histogram_merge_associative_and_exact(self):
        rng = np.random.default_rng(8)
        chunks = [rng.exponential(1.0, size=n) for n in (500, 200, 800)]
        shards = []
        for chunk in chunks:
            h = Histogram(0.0, 5.0, bins=64)
            h.add_many(chunk)
            shards.append(h)
        left = shards[0].merge(shards[1]).merge(shards[2])
        right = shards[0].merge(shards[1].merge(shards[2]))
        whole = Histogram(0.0, 5.0, bins=64)
        whole.add_many(np.concatenate(chunks))
        for merged in (left, right):
            assert merged.total == whole.total
            assert merged.underflow == whole.underflow
            assert merged.overflow == whole.overflow
            assert (merged.counts == whole.counts).all()
            for q in (0.1, 0.5, 0.9, 0.99):
                assert merged.quantile(q) == whole.quantile(q)

    def test_online_monitor_merge_across_batch_boundary(self):
        rng = np.random.default_rng(9)
        values = rng.exponential(1e-4, size=2_000)
        hist_range = (0.0, 2e-3)
        cut = 1_000  # 10 of 20 batches, a clean shard boundary

        def shard(chunk, start):
            sink = OnlineMonitor(
                "latency",
                batch_count=BATCHES,
                expected_count=len(values),
                histogram_range=hist_range,
            )
            # Replay with the global observation index so batch selection
            # matches the unsharded stream.
            for i, v in enumerate(chunk):
                sink._batches[
                    min((start + i) // sink._batch_size, BATCHES - 1)
                ].push(float(v))
                sink._stats.push(float(v))
                sink._histogram.add(float(v))
            return sink

        a, b = shard(values[:cut], 0), shard(values[cut:], cut)
        merged = a.merge(b)
        whole = OnlineMonitor(
            "latency",
            batch_count=BATCHES,
            expected_count=len(values),
            histogram_range=hist_range,
        )
        for i, v in enumerate(values):
            whole.record(float(i), float(v))
        assert merged.count == whole.count
        assert merged.minimum() == whole.minimum()
        assert merged.maximum() == whole.maximum()
        assert _rel(merged.mean(), whole.mean()) < PARITY_REL
        ref = whole.batch_means_interval(BATCHES)
        got = merged.batch_means_interval(BATCHES)
        assert _rel(got.mean, ref.mean) < PARITY_REL
        assert _rel(got.half_width, ref.half_width) < PARITY_REL
        for q in (50.0, 95.0):
            assert merged.percentile(q) == whole.percentile(q)

    def test_merge_requires_explicit_histogram_range(self):
        a = OnlineMonitor("x")
        b = OnlineMonitor("x")
        a.record(0.0, 1.0)
        b.record(0.0, 2.0)
        with pytest.raises(ValueError, match="histogram_range"):
            a.merge(b)

    def test_merge_rejects_mixed_quantile_tracking(self):
        a = OnlineMonitor("x", track_quantiles=False)
        b = OnlineMonitor("x")
        with pytest.raises(ValueError, match="quantile tracking"):
            a.merge(b)

    def test_merge_rejects_different_batch_layouts(self):
        a = OnlineMonitor("x", batch_count=10, expected_count=100,
                          track_quantiles=False)
        b = OnlineMonitor("x", batch_count=20, expected_count=100,
                          track_quantiles=False)
        with pytest.raises(ValueError, match="batch layouts"):
            a.merge(b)

    def test_merge_without_quantiles_is_exact(self):
        a = OnlineMonitor("x", track_quantiles=False)
        b = OnlineMonitor("x", track_quantiles=False)
        for i in range(10):
            a.record(float(i), float(i))
        for i in range(5):
            b.record(float(i), float(100 + i))
        merged = a.merge(b)
        assert merged.count == 15
        assert merged.minimum() == 0.0
        assert merged.maximum() == 104.0
        assert math.isnan(merged.percentile(50))


class TestOnlineMonitorEdgeCases:
    def test_empty_sink_is_nan(self):
        sink = OnlineMonitor()
        assert sink.count == 0
        assert math.isnan(sink.mean())
        assert math.isnan(sink.percentile(50))
        assert math.isnan(sink.quantile_resolution)

    def test_constant_stream_freezes_degenerate_range(self):
        sink = OnlineMonitor(calibration_samples=16)
        for i in range(64):
            sink.record(float(i), 0.0)  # max*4 == min == 0 → degenerate
        assert sink.percentile(50) == 0.0
        assert sink.quantile_resolution > 0

    def test_extend_matches_record_loop(self):
        values = np.linspace(0.1, 1.0, 50)
        a = OnlineMonitor("x", track_quantiles=False)
        b = OnlineMonitor("x", track_quantiles=False)
        a.extend(np.arange(50.0), values)
        for i, v in enumerate(values):
            b.record(float(i), float(v))
        assert a.count == b.count
        assert a.mean() == b.mean()
        assert a.total == b.total

    def test_extend_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            OnlineMonitor().extend([0.0], [1.0, 2.0])

    def test_percentile_range_validation(self):
        sink = OnlineMonitor()
        sink.record(0.0, 1.0)
        with pytest.raises(ValueError):
            sink.percentile(101.0)

    def test_slots_reject_stray_attributes(self):
        sink = OnlineMonitor()
        with pytest.raises(AttributeError):
            sink.messages = []

    def test_repr_mentions_name_and_count(self):
        sink = OnlineMonitor("latency")
        sink.record(0.0, 2.0)
        assert "latency" in repr(sink) and "n=1" in repr(sink)
