"""CLI-level cache tests: bit-identity on golden fixtures + the `cache` verb.

The headline acceptance check of the result cache: running the *same*
golden-fixture CLI invocation twice with ``--cache`` produces bytes
identical to the uncached fixture — on the cold (computing) run and the
warm (served-from-disk) run alike.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys

import pytest

from repro.cli import main

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "experiments", "golden"
)
sys.path.insert(0, GOLDEN_DIR)
from regen import CLI_CASES, run_cli_case  # noqa: E402

sys.path.pop(0)


def golden_text(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name), "r", encoding="utf-8") as handle:
        return handle.read()


def run_case_cached(name: str, tmp_path, cache_dir, tag: str) -> str:
    argv = list(CLI_CASES[name]) + ["--cache", str(cache_dir)]
    out_path = str(tmp_path / f"{tag}{os.path.splitext(name)[1]}")
    with contextlib.redirect_stderr(io.StringIO()):
        return run_cli_case(argv, out_path)


def run_main(argv, tmp_path=None):
    """Run the CLI in-process, capturing stdout and stderr."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(argv)
    assert code == 0, err.getvalue()
    return out.getvalue(), err.getvalue()


class TestGoldenBitIdentity:
    @pytest.mark.parametrize("name", ["cli_figure4_analysis.csv", "cli_figure6_sim.csv"])
    def test_cold_and_warm_runs_match_uncached_fixture(self, name, tmp_path):
        cache_dir = tmp_path / "cache"
        want = golden_text(name)
        assert run_case_cached(name, tmp_path, cache_dir, "cold") == want
        assert run_case_cached(name, tmp_path, cache_dir, "warm") == want
        # The second run really was served from the cache.
        stats_out, _ = run_main(["cache", "stats", "--cache", str(cache_dir), "--json"])
        stats = json.loads(stats_out)
        assert stats["entries"] == 1
        assert stats["hits"] == 1


class TestRunVerbCache:
    RUN_ARGS = [
        "run", "case-1", "--clusters", "2", "--sizes", "512",
        "--messages", "150", "--replications", "1",
    ]

    def test_run_twice_is_byte_identical_and_reports_hit(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = self.RUN_ARGS + ["--cache", cache_dir]
        cold_out, cold_err = run_main(argv + ["--csv", str(tmp_path / "cold.csv")])
        warm_out, warm_err = run_main(argv + ["--csv", str(tmp_path / "warm.csv")])
        assert "[cache miss]" in cold_err
        assert "[cache hit]" in warm_err
        assert (tmp_path / "cold.csv").read_bytes() == (tmp_path / "warm.csv").read_bytes()
        # stdout differs only in the echoed CSV filename.
        strip = lambda text: "\n".join(  # noqa: E731
            line for line in text.splitlines() if not line.startswith("Wrote ")
        )
        assert strip(warm_out) == strip(cold_out)

    def test_no_cache_flag_ignores_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        _, err = run_main(self.RUN_ARGS + ["--no-cache", "--mode", "analysis"])
        assert "cache" not in err
        assert not (tmp_path / "env-cache").exists()

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        _, err = run_main(self.RUN_ARGS + ["--mode", "analysis"])
        assert "[cache miss]" in err
        _, err = run_main(self.RUN_ARGS + ["--mode", "analysis"])
        assert "[cache hit]" in err

    def test_resume_disables_cache(self, tmp_path):
        """--resume must execute (and keep journaling), not hit the cache."""
        cache_dir = str(tmp_path / "cache")
        journal = str(tmp_path / "run.journal")
        run_main(self.RUN_ARGS + ["--cache", cache_dir, "--csv", str(tmp_path / "a.csv")])
        run_main(self.RUN_ARGS + ["--checkpoint", journal, "--csv", str(tmp_path / "b.csv")])
        _, err = run_main(
            self.RUN_ARGS
            + ["--cache", cache_dir, "--resume", journal, "--csv", str(tmp_path / "c.csv")]
        )
        assert "cache hit" not in err
        assert (tmp_path / "a.csv").read_bytes() == (tmp_path / "c.csv").read_bytes()


class TestCacheVerb:
    def seed_cache(self, tmp_path) -> str:
        cache_dir = str(tmp_path / "cache")
        run_main(
            ["run", "case-1", "--clusters", "2", "--sizes", "512", "--mode",
             "analysis", "--cache", cache_dir]
        )
        return cache_dir

    def test_list_show_evict_round_trip(self, tmp_path):
        cache_dir = self.seed_cache(tmp_path)
        listed, _ = run_main(["cache", "list", "--cache", cache_dir, "--json"])
        entries = json.loads(listed)
        assert len(entries) == 1
        key = entries[0]["key"]
        shown, _ = run_main(["cache", "show", key, "--cache", cache_dir])
        assert json.loads(shown)["spec"]["scenario"] == "case-1"
        evicted, _ = run_main(["cache", "evict", key, "--cache", cache_dir])
        assert key in evicted
        stats, _ = run_main(["cache", "stats", "--cache", cache_dir, "--json"])
        assert json.loads(stats)["entries"] == 0

    def test_clear(self, tmp_path):
        cache_dir = self.seed_cache(tmp_path)
        out, _ = run_main(["cache", "clear", "--cache", cache_dir])
        assert "removed 1 entries" in out

    def test_cache_verb_requires_a_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["cache", "stats"])

    def test_show_unknown_key_fails(self, tmp_path):
        cache_dir = self.seed_cache(tmp_path)
        with pytest.raises(SystemExit):
            main(["cache", "show", "f" * 64, "--cache", cache_dir])
