"""Tests for the content-addressed result cache (`repro.cache`).

Covers the store's contract end to end: hit/miss/eviction accounting, key
stability across processes, code-version invalidation, corrupted-entry
recovery, and the headline guarantee — a cache hit renders the same result
rows a cold run computes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.cache import (
    CacheError,
    ResultCache,
    code_fingerprint,
    coerce_cache,
    spec_cache_key,
)
from repro.experiments.pipeline import (
    ExperimentRunner,
    ExperimentSpec,
    TableCollector,
    build_plan,
)
from repro.experiments.scenarios import PAPER_PARAMETERS
from repro.viz.tables import rows_to_csv_text

FP_A = "a" * 64
FP_B = "b" * 64


def small_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        scenario="case-1",
        mode="both",
        cluster_counts=[2],
        message_sizes=[512.0],
        replications=1,
        simulation_messages=120,
        seed=0,
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def compute_outcome(plan):
    return ExperimentRunner().run_outcome(plan)


class TestKeys:
    def test_key_is_stable_and_order_independent(self):
        spec = small_spec()
        key = spec_cache_key(spec.to_json(), FP_A)
        assert key == spec_cache_key(spec.to_json(), FP_A)
        # Field order of the JSON dict must not matter.
        shuffled = dict(reversed(list(spec.to_json().items())))
        assert spec_cache_key(shuffled, FP_A) == key

    def test_key_depends_on_spec_and_fingerprint(self):
        spec = small_spec()
        key = spec_cache_key(spec.to_json(), FP_A)
        assert spec_cache_key(small_spec(seed=1).to_json(), FP_A) != key
        assert spec_cache_key(spec.to_json(), FP_B) != key

    def test_key_stable_across_processes(self):
        """The same (spec, fingerprint) yields the same key in a fresh interpreter."""
        spec = small_spec()
        script = (
            "import json, sys\n"
            "from repro.cache import spec_cache_key\n"
            "from repro.experiments.pipeline import ExperimentSpec\n"
            "spec = ExperimentSpec.from_json_text(sys.argv[1])\n"
            "print(spec_cache_key(spec.to_json(), sys.argv[2]))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(spec.to_json()), FP_A],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == spec_cache_key(spec.to_json(), FP_A)

    def test_code_fingerprint_is_memoized_and_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # hex digest

    def test_uncacheable_plan_with_custom_parameters(self, tmp_path):
        import dataclasses

        spec = small_spec(mode="analysis")
        custom = dataclasses.replace(PAPER_PARAMETERS, generation_rate=0.5)
        plan = build_plan(spec, parameters=custom)
        cache = ResultCache(tmp_path / "store", fingerprint=FP_A)
        assert cache.key_for_plan(plan) is None
        outcome = compute_outcome(plan)
        assert cache.put_outcome(plan, outcome) is None
        assert cache.get_outcome(plan) is None
        assert cache.stats().entries == 0


class TestStoreLifecycle:
    def test_miss_put_hit_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "store", fingerprint=FP_A)
        plan = build_plan(small_spec())
        assert cache.get_outcome(plan) is None  # miss
        key = cache.put_outcome(plan, compute_outcome(plan))
        assert key == cache.key_for_plan(plan)
        hit = cache.get_outcome(plan)
        assert hit is not None
        stats = cache.stats()
        assert stats.entries == 1
        assert (stats.hits, stats.misses, stats.puts) == (1, 1, 1)
        entry = cache.get_entry(key)
        assert entry.hits == 1
        assert entry.scenario == "case-1"
        assert entry.last_hit_at is not None

    def test_counters_persist_across_opens(self, tmp_path):
        root = tmp_path / "store"
        cache = ResultCache(root, fingerprint=FP_A)
        plan = build_plan(small_spec())
        cache.get_outcome(plan)
        cache.put_outcome(plan, compute_outcome(plan))
        reopened = ResultCache(root, fingerprint=FP_A)
        assert reopened.get_outcome(plan) is not None
        stats = reopened.stats()
        assert (stats.hits, stats.misses, stats.puts) == (1, 1, 1)

    def test_evict(self, tmp_path):
        cache = ResultCache(tmp_path / "store", fingerprint=FP_A)
        plan = build_plan(small_spec(mode="analysis"))
        key = cache.put_outcome(plan, compute_outcome(plan))
        assert cache.evict(key)
        assert not cache.evict(key)  # second eviction is a no-op
        assert cache.get_entry(key) is None
        assert cache.stats().entries == 0
        assert cache.stats().evictions == 1
        assert cache.get_outcome(plan) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "store", fingerprint=FP_A)
        for seed in (0, 1):
            plan = build_plan(small_spec(mode="analysis", seed=seed))
            cache.put_outcome(plan, compute_outcome(plan))
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_coerce_cache(self, tmp_path):
        assert coerce_cache(None) is None
        opened = coerce_cache(tmp_path / "store")
        assert isinstance(opened, ResultCache)
        assert coerce_cache(opened) is opened

    def test_unusable_root_raises_cache_error(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("plain file")
        with pytest.raises(CacheError):
            ResultCache(blocker / "store")


class TestCodeVersionInvalidation:
    def test_new_fingerprint_never_serves_old_entries(self, tmp_path):
        root = tmp_path / "store"
        plan = build_plan(small_spec(mode="analysis"))
        old = ResultCache(root, fingerprint=FP_A)
        old.put_outcome(plan, compute_outcome(plan))
        new = ResultCache(root, fingerprint=FP_B)
        assert new.get_outcome(plan) is None  # different key: a clean miss
        assert new.stats().stale_entries == 1
        assert new.evict_stale() == 1
        assert new.stats().entries == 0
        # The old code version would still have been a hit before eviction.
        assert old.get_outcome(plan) is None  # gone now — it was evicted

    def test_evict_stale_keeps_current_entries(self, tmp_path):
        root = tmp_path / "store"
        plan = build_plan(small_spec(mode="analysis"))
        ResultCache(root, fingerprint=FP_A).put_outcome(plan, compute_outcome(plan))
        new = ResultCache(root, fingerprint=FP_B)
        new.put_outcome(plan, compute_outcome(plan))
        assert new.evict_stale() == 1
        assert new.get_outcome(plan) is not None


class TestCorruptionRecovery:
    def put_one(self, tmp_path):
        cache = ResultCache(tmp_path / "store", fingerprint=FP_A)
        plan = build_plan(small_spec())
        key = cache.put_outcome(plan, compute_outcome(plan))
        return cache, plan, cache._payload_path(key)

    def test_truncated_payload_recovers_as_miss(self, tmp_path):
        cache, plan, path = self.put_one(tmp_path)
        with open(path, "r+", encoding="utf-8") as handle:
            handle.truncate(40)
        assert cache.get_outcome(plan) is None
        stats = cache.stats()
        assert stats.corrupt_dropped == 1
        assert stats.entries == 0
        # The campaign recomputes and re-fills cleanly afterwards.
        cache.put_outcome(plan, compute_outcome(plan))
        assert cache.get_outcome(plan) is not None

    def test_deleted_payload_recovers_as_miss(self, tmp_path):
        cache, plan, path = self.put_one(tmp_path)
        os.remove(path)
        assert cache.get_outcome(plan) is None
        assert cache.stats().corrupt_dropped == 1

    def test_schema_drift_recovers_as_miss(self, tmp_path):
        cache, plan, path = self.put_one(tmp_path)
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
        envelope["outcome"]["payload_version"] = 999
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        assert cache.get_outcome(plan) is None
        assert cache.stats().corrupt_dropped == 1

    def test_wrong_key_payload_recovers_as_miss(self, tmp_path):
        cache, plan, path = self.put_one(tmp_path)
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
        envelope["key"] = "0" * 64
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        assert cache.get_outcome(plan) is None
        assert cache.stats().corrupt_dropped == 1


class TestHitEqualsMiss:
    def test_hit_renders_identical_rows_and_csv(self, tmp_path):
        """The cached pipeline result matches the cold one, value for value."""
        spec = small_spec(cluster_counts=[2, 4], replications=2)
        cache = ResultCache(tmp_path / "store")
        cold = ExperimentRunner(cache=cache).run(build_plan(spec), TableCollector())
        warm = ExperimentRunner(cache=cache).run(build_plan(spec), TableCollector())
        assert cache.stats().hits == 1
        assert warm.to_rows() == cold.to_rows()
        assert rows_to_csv_text(warm.to_rows()) == rows_to_csv_text(cold.to_rows())
        cold_acc, warm_acc = cold.accuracy_summary(), warm.accuracy_summary()
        assert warm_acc.as_dict() == cold_acc.as_dict()

    def test_hit_equals_miss_without_simulation(self, tmp_path):
        spec = small_spec(mode="analysis", cluster_counts=[2, 4, 8])
        cache = ResultCache(tmp_path / "store")
        cold = ExperimentRunner(cache=cache).run(build_plan(spec), TableCollector())
        warm = ExperimentRunner(cache=cache).run(build_plan(spec), TableCollector())
        assert cache.stats().hits == 1
        assert warm.to_rows() == cold.to_rows()
