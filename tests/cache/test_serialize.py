"""Unit tests for the hex-exact cache payload (de)hydration."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cache import CachePayloadError, outcome_from_payload, outcome_to_payload
from repro.cache.serialize import _hex, _unhex
from repro.experiments.pipeline import ExperimentRunner, ExperimentSpec, build_plan


def small_plan(**overrides):
    fields = dict(
        scenario="case-1",
        mode="both",
        cluster_counts=[2],
        message_sizes=[512.0],
        replications=2,
        simulation_messages=100,
        seed=0,
    )
    fields.update(overrides)
    return build_plan(ExperimentSpec(**fields))


class TestFloatHex:
    @pytest.mark.parametrize(
        "value",
        [0.0, -0.0, 1.5, -2.75e-300, 1.2345678901234567e17, math.inf, -math.inf],
    )
    def test_round_trip_is_exact(self, value):
        restored = _unhex(_hex(value))
        assert restored == value
        assert math.copysign(1.0, restored) == math.copysign(1.0, value)

    def test_nan_round_trips(self):
        assert math.isnan(_unhex(_hex(math.nan)))

    def test_unhex_rejects_garbage(self):
        with pytest.raises(CachePayloadError):
            _unhex("not a hex float")
        with pytest.raises(CachePayloadError):
            _unhex(1.5)


class TestOutcomeRoundTrip:
    def test_round_trip_is_bit_exact(self):
        plan = small_plan()
        outcome = ExperimentRunner().run_outcome(plan)
        payload = outcome_to_payload(outcome)
        restored = outcome_from_payload(payload, plan)

        grid, grid2 = outcome.analysis, restored.analysis
        for name in ("mean_latency_s", "remote_latency_s", "iterations", "throttling_factor"):
            a, b = getattr(grid, name), getattr(grid2, name)
            assert np.array_equal(a, b, equal_nan=True)
            assert a.dtype == b.dtype
        assert len(restored.replicated) == len(outcome.replicated)
        for mine, theirs in zip(outcome.replicated, restored.replicated):
            assert theirs == mine

    def test_round_trip_survives_json(self):
        import json

        plan = small_plan(replications=1)
        outcome = ExperimentRunner().run_outcome(plan)
        payload = json.loads(json.dumps(outcome_to_payload(outcome)))
        restored = outcome_from_payload(payload, plan)
        assert restored.replicated == outcome.replicated

    def test_version_mismatch_rejected(self):
        plan = small_plan(mode="analysis")
        payload = outcome_to_payload(ExperimentRunner().run_outcome(plan))
        payload["payload_version"] = 999
        with pytest.raises(CachePayloadError):
            outcome_from_payload(payload, plan)

    def test_point_count_mismatch_rejected(self):
        plan = small_plan(mode="analysis")
        payload = outcome_to_payload(ExperimentRunner().run_outcome(plan))
        other = small_plan(mode="analysis", cluster_counts=[2, 4])
        with pytest.raises(CachePayloadError):
            outcome_from_payload(payload, other)

    def test_mode_mismatch_rejected(self):
        plan = small_plan(mode="analysis")
        payload = outcome_to_payload(ExperimentRunner().run_outcome(plan))
        simulate_plan = small_plan(mode="both")
        with pytest.raises(CachePayloadError):
            outcome_from_payload(payload, simulate_plan)

    def test_non_dict_payload_rejected(self):
        plan = small_plan(mode="analysis")
        for garbage in (None, [], "text", 7):
            with pytest.raises(CachePayloadError):
                outcome_from_payload(garbage, plan)
