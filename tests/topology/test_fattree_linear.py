"""Unit tests for the paper's two topologies: fat-tree and linear switch array.

The key anchor is the paper's worked example (Figure 3): a fat-tree with
N = 16 nodes and Pr = 8 ports has d = 2 stages, k = 6 switches and a
bisection width of 8 = N/2 (full bisection bandwidth, Theorem 1).
"""

from __future__ import annotations

import math

import pytest

from repro.errors import TopologyError
from repro.topology.fattree import FatTreeTopology, fat_tree_stages, fat_tree_switch_count
from repro.topology.linear_array import (
    LinearArrayTopology,
    average_traversed_switches,
    linear_array_switch_count,
)


class TestFatTreePaperExample:
    """Figure 3 of the paper: N = 16, Pr = 8."""

    @pytest.fixture
    def figure3(self) -> FatTreeTopology:
        return FatTreeTopology(num_nodes=16, switch_ports=8)

    def test_two_stages(self, figure3):
        assert figure3.num_stages == 2

    def test_six_switches(self, figure3):
        assert figure3.num_switches == 6

    def test_full_bisection_bandwidth(self, figure3):
        assert figure3.bisection_width == 8
        assert figure3.full_bisection

    def test_switch_traversals(self, figure3):
        # Eq. (11): 2d − 1 = 3 switches on an end-to-end path.
        assert figure3.switch_traversals == 3
        assert figure3.diameter_switch_hops == 3

    def test_switches_per_stage(self, figure3):
        assert figure3.switches_per_stage == [4, 2]

    def test_up_and_down_links(self, figure3):
        assert figure3.up_links_per_switch == 4
        assert figure3.down_links_per_switch == 4


class TestFatTreeEvaluationPlatform:
    """The paper's evaluation platform: Pr = 24 and N from the C sweep."""

    def test_256_nodes_needs_two_stages(self):
        assert fat_tree_stages(256, 24) == 2

    def test_small_networks_single_stage(self):
        # The C = 16 point of the figures: both C = 16 and N0 = 16 are <= 24.
        assert fat_tree_stages(16, 24) == 1
        assert fat_tree_stages(24, 24) == 1

    def test_stage_boundary_above_port_count(self):
        assert fat_tree_stages(25, 24) == 2

    def test_three_stages_for_very_large_networks(self):
        # capacity(2) = 24 * 12 = 288, so 289 nodes need a third stage.
        assert fat_tree_stages(288, 24) == 2
        assert fat_tree_stages(289, 24) == 3

    def test_switch_count_equation_13(self):
        # k = (d−1)·ceil(N/(Pr/2)) + ceil(N/Pr) for N=256, Pr=24:
        # d=2 -> 1*ceil(256/12) + ceil(256/24) = 22 + 11 = 33.
        assert fat_tree_switch_count(256, 24) == 33

    def test_single_stage_switch_count(self):
        assert fat_tree_switch_count(16, 24) == 1
        assert fat_tree_switch_count(48, 48) == 1

    def test_stages_monotone_in_nodes(self):
        stages = [fat_tree_stages(n, 24) for n in (8, 24, 64, 256, 1024, 4096)]
        assert stages == sorted(stages)

    def test_validation(self):
        with pytest.raises(TopologyError):
            fat_tree_stages(0, 8)
        with pytest.raises(TopologyError):
            fat_tree_stages(8, 1)
        with pytest.raises(TopologyError):
            fat_tree_stages(10, 2)  # Pr/2 = 1 cannot grow


class TestFatTreeProperties:
    def test_full_bisection_for_many_sizes(self):
        for n in (2, 7, 16, 50, 256, 1000):
            topo = FatTreeTopology(n, 24)
            assert topo.full_bisection
            assert topo.bisection_width == math.ceil(n / 2)

    def test_average_equals_worst_case(self):
        topo = FatTreeTopology(64, 8)
        assert topo.average_switch_hops == float(topo.switch_traversals)

    def test_stats_dataclass(self):
        stats = FatTreeTopology(16, 8).stats()
        assert stats.name == "fat-tree"
        assert stats.num_nodes == 16
        assert stats.num_switches == 6
        assert stats.full_bisection
        assert stats.as_dict()["bisection_width"] == 8

    def test_graph_construction_counts(self):
        import networkx as nx

        topo = FatTreeTopology(16, 8)
        graph = topo.to_graph()
        nodes = [n for n, d in graph.nodes(data=True) if d.get("kind") == "node"]
        switches = [n for n, d in graph.nodes(data=True) if d.get("kind") == "switch"]
        assert len(nodes) == 16
        assert len(switches) == topo.num_switches
        assert nx.is_connected(graph)

    def test_repr(self):
        assert "d=2" in repr(FatTreeTopology(16, 8))


class TestLinearArray:
    def test_switch_count_equation_17(self):
        # k = ceil(N/Pr): the paper's Eq. 17.
        assert linear_array_switch_count(256, 24) == 11
        assert linear_array_switch_count(16, 24) == 1
        assert linear_array_switch_count(24, 24) == 1
        assert linear_array_switch_count(25, 24) == 2

    def test_average_traversed_switches_paper_formula(self):
        # Eq. (19): (k + 1)/3.
        assert average_traversed_switches(11) == pytest.approx(4.0)
        assert average_traversed_switches(1) == pytest.approx(2.0 / 3.0)

    def test_average_traversed_exact_close_to_paper_for_large_k(self):
        k = 90
        paper = average_traversed_switches(k, exact=False)
        exact = average_traversed_switches(k, exact=True)
        assert paper == pytest.approx(exact, rel=0.1)

    def test_validation(self):
        with pytest.raises(TopologyError):
            linear_array_switch_count(0, 8)
        with pytest.raises(TopologyError):
            average_traversed_switches(0)

    def test_bisection_width_is_one(self):
        topo = LinearArrayTopology(256, 24)
        assert topo.bisection_width == 1
        assert not topo.full_bisection

    def test_blocked_node_factor(self):
        # Eq. (21): the N/2 multiplier on the bandwidth term.
        assert LinearArrayTopology(256, 24).blocked_node_factor == 128.0
        assert LinearArrayTopology(10, 24).blocked_node_factor == 5.0

    def test_single_stage(self):
        topo = LinearArrayTopology(100, 24)
        assert topo.num_stages == 1
        assert topo.diameter_switch_hops == topo.num_switches

    def test_stats(self):
        stats = LinearArrayTopology(48, 24).stats()
        assert stats.name == "linear-array"
        assert stats.num_switches == 2
        assert not stats.full_bisection

    def test_graph_is_a_chain(self):
        import networkx as nx

        topo = LinearArrayTopology(48, 24)
        graph = topo.to_graph()
        switches = [n for n, d in graph.nodes(data=True) if d.get("kind") == "switch"]
        assert len(switches) == 2
        assert nx.is_connected(graph)
        # Removing the single inter-switch edge disconnects the graph.
        graph.remove_edge(("switch", 0), ("switch", 1))
        assert not nx.is_connected(graph)
