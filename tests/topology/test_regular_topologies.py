"""Unit tests for the extension topologies and the graph-based metrics."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.fattree import FatTreeTopology
from repro.topology.linear_array import LinearArrayTopology
from repro.topology.metrics import (
    average_node_distance,
    bisection_width_estimate,
    bisection_width_exact,
    graph_diameter,
    node_count,
    switch_count,
)
from repro.topology.regular import (
    BinaryTreeTopology,
    HypercubeTopology,
    KAryNCubeTopology,
    MeshTopology,
    StarTopology,
    TorusTopology,
)


class TestMesh:
    def test_counts(self):
        mesh = MeshTopology(4, 4)
        assert mesh.num_nodes == 16
        assert mesh.num_switches == 16
        assert mesh.num_stages == 1

    def test_bisection(self):
        assert MeshTopology(4, 4).bisection_width == 4
        assert MeshTopology(2, 8).bisection_width == 2

    def test_average_distance_positive(self):
        mesh = MeshTopology(4, 4)
        assert mesh.average_hop_distance > 0
        assert mesh.average_switch_hops == mesh.average_hop_distance + 1

    def test_diameter(self):
        assert MeshTopology(4, 4).diameter_switch_hops == 7

    def test_graph_structure(self):
        import networkx as nx

        graph = MeshTopology(3, 3).to_graph()
        assert graph.number_of_nodes() == 9
        assert graph.number_of_edges() == 12  # 2 * 3 * (3-1)
        assert nx.is_connected(graph)

    def test_validation(self):
        with pytest.raises(TopologyError):
            MeshTopology(0, 4)


class TestTorusAndKAry:
    def test_torus_is_kary2cube(self):
        torus = TorusTopology(4)
        assert torus.num_nodes == 16
        assert torus.dimensions == 2
        assert torus.arity == 4

    def test_kary_bisection(self):
        # 4-ary 2-cube: 2 * 4 = 8.
        assert KAryNCubeTopology(4, 2).bisection_width == 8
        # Binary cube degenerates into a hypercube bisection.
        assert KAryNCubeTopology(2, 4).bisection_width == 8

    def test_kary_average_distance(self):
        # k even: n*k/4 hops.
        assert KAryNCubeTopology(4, 2).average_hop_distance == pytest.approx(2.0)
        # odd k: n*(k^2-1)/(4k)
        assert KAryNCubeTopology(3, 2).average_hop_distance == pytest.approx(2 * 8 / 12)

    def test_kary_graph_degree(self):
        graph = KAryNCubeTopology(4, 2).to_graph()
        degrees = {d for _, d in graph.degree()}
        assert degrees == {4}  # every node has 2 neighbours per dimension

    def test_validation(self):
        with pytest.raises(TopologyError):
            KAryNCubeTopology(1, 2)
        with pytest.raises(TopologyError):
            KAryNCubeTopology(4, 0)


class TestHypercube:
    def test_counts(self):
        cube = HypercubeTopology(4)
        assert cube.num_nodes == 16
        assert cube.bisection_width == 8
        assert cube.full_bisection

    def test_average_and_diameter(self):
        cube = HypercubeTopology(6)
        assert cube.average_hop_distance == pytest.approx(3.0)
        assert cube.diameter_switch_hops == 7

    def test_graph_degree_equals_dimension(self):
        graph = HypercubeTopology(3).to_graph()
        assert {d for _, d in graph.degree()} == {3}

    def test_validation(self):
        with pytest.raises(TopologyError):
            HypercubeTopology(0)


class TestStarAndTree:
    def test_star_counts(self):
        star = StarTopology(num_nodes=8, switch_ports=24)
        assert star.num_switches == 1
        assert star.average_switch_hops == 1.0
        assert star.bisection_width == 4

    def test_star_requires_enough_ports(self):
        with pytest.raises(TopologyError):
            StarTopology(num_nodes=32, switch_ports=24)

    def test_tree_bisection_is_one(self):
        """§5.1 of the paper: the bisection width of a tree is 1."""
        tree = BinaryTreeTopology(num_nodes=16)
        assert tree.bisection_width == 1
        assert not tree.full_bisection

    def test_tree_counts(self):
        tree = BinaryTreeTopology(num_nodes=16)
        assert tree.levels == 4
        assert tree.num_switches == 15

    def test_tree_graph_connected(self):
        import networkx as nx

        graph = BinaryTreeTopology(num_nodes=8).to_graph()
        assert nx.is_connected(graph)

    def test_tree_validation(self):
        with pytest.raises(TopologyError):
            BinaryTreeTopology(num_nodes=1)


class TestGraphMetrics:
    def test_node_and_switch_counts(self):
        graph = FatTreeTopology(16, 8).to_graph()
        assert node_count(graph) == 16
        assert switch_count(graph) == 6

    def test_average_distance_and_diameter(self):
        graph = StarTopology(6, 24).to_graph()
        # Every node pair is exactly 2 hops apart through the central switch.
        assert average_node_distance(graph) == pytest.approx(2.0)
        assert graph_diameter(graph) == 2

    def test_exact_bisection_of_small_fat_tree(self):
        """Theorem 1 checked on the explicit Figure-3 wiring."""
        graph = FatTreeTopology(8, 4).to_graph()
        assert bisection_width_exact(graph, max_nodes=8) >= 4

    def test_exact_bisection_of_linear_array_is_one(self):
        graph = LinearArrayTopology(8, 4).to_graph()
        assert bisection_width_exact(graph, max_nodes=8) == 1

    def test_exact_bisection_size_guard(self):
        graph = FatTreeTopology(64, 8).to_graph()
        with pytest.raises(TopologyError):
            bisection_width_exact(graph, max_nodes=16)

    def test_estimate_matches_exact_on_chain(self):
        # 8 nodes over two 4-port switches: the balanced split cuts only the
        # single inter-switch link.
        graph = LinearArrayTopology(8, 4).to_graph()
        estimate = bisection_width_estimate(graph, trials=50, seed=1)
        assert estimate == 1

    def test_estimate_is_upper_bound_of_exact(self):
        # 12 nodes over three switches: a balanced 6/6 split cannot align
        # with the switch boundaries, so the achievable cut exceeds 1.
        graph = LinearArrayTopology(12, 4).to_graph()
        estimate = bisection_width_estimate(graph, trials=30, seed=2)
        exact = bisection_width_exact(graph, max_nodes=12)
        assert estimate >= exact
        assert exact >= 1

    def test_base_class_graph_not_implemented(self):
        from repro.topology.base import Topology

        class Dummy(Topology):
            family = "dummy"

        with pytest.raises(TopologyError):
            Dummy(4, 4).to_graph()
