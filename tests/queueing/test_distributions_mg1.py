"""Unit tests for distribution descriptors and the M/G/1 queue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.rng import RandomStreams
from repro.errors import StabilityError
from repro.queueing.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    UniformDistribution,
)
from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import MM1Queue


@pytest.fixture
def rng():
    return RandomStreams(seed=99).stream("dist")


class TestExponential:
    def test_validation(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_moments(self):
        d = Exponential(2.0)
        assert d.mean == 2.0
        assert d.variance == 4.0
        assert d.scv == pytest.approx(1.0)
        assert d.rate == pytest.approx(0.5)

    def test_from_rate(self):
        assert Exponential.from_rate(4.0).mean == pytest.approx(0.25)
        with pytest.raises(ValueError):
            Exponential.from_rate(0.0)

    def test_scaled(self):
        assert Exponential(2.0).scaled(3.0).mean == pytest.approx(6.0)

    def test_sampling_mean(self, rng):
        d = Exponential(3.0)
        samples = [d.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(3.0, rel=0.05)


class TestDeterministic:
    def test_moments(self):
        d = Deterministic(5.0)
        assert d.mean == 5.0
        assert d.variance == 0.0
        assert d.scv == 0.0

    def test_sampling_is_constant(self, rng):
        d = Deterministic(1.5)
        assert {d.sample(rng) for _ in range(10)} == {1.5}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Deterministic(-1.0)


class TestErlang:
    def test_moments(self):
        d = Erlang(k=4, mean_value=2.0)
        assert d.mean == 2.0
        assert d.variance == pytest.approx(1.0)
        assert d.scv == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            Erlang(0, 1.0)
        with pytest.raises(ValueError):
            Erlang(2, -1.0)

    def test_sampling(self, rng):
        d = Erlang(3, 6.0)
        samples = [d.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(6.0, rel=0.05)


class TestHyperExponential:
    def test_moments(self):
        d = HyperExponential(means=(1.0, 3.0), probabilities=(0.5, 0.5))
        assert d.mean == pytest.approx(2.0)
        assert d.scv > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HyperExponential(means=(1.0,), probabilities=(0.5,))
        with pytest.raises(ValueError):
            HyperExponential(means=(1.0, -1.0), probabilities=(0.5, 0.5))

    def test_fit_from_mean_and_scv(self):
        d = HyperExponential.from_mean_and_scv(mean=4.0, scv=3.0)
        assert d.mean == pytest.approx(4.0)
        assert d.scv == pytest.approx(3.0, rel=1e-6)

    def test_fit_requires_scv_above_one(self):
        with pytest.raises(ValueError):
            HyperExponential.from_mean_and_scv(1.0, 0.8)

    def test_sampling(self, rng):
        d = HyperExponential.from_mean_and_scv(mean=2.0, scv=4.0)
        samples = [d.sample(rng) for _ in range(40_000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.1)


class TestUniformDistribution:
    def test_moments(self):
        d = UniformDistribution(2.0, 6.0)
        assert d.mean == 4.0
        assert d.variance == pytest.approx(16.0 / 12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformDistribution(5.0, 2.0)

    def test_sampling_bounds(self, rng):
        d = UniformDistribution(1.0, 2.0)
        samples = [d.sample(rng) for _ in range(100)]
        assert all(1.0 <= s <= 2.0 for s in samples)


class TestMG1:
    def test_exponential_service_reduces_to_mm1(self):
        lam = 2.0
        service = Exponential(0.25)  # µ = 4
        mg1 = MG1Queue(lam, service)
        mm1 = MM1Queue(lam, 4.0)
        assert mg1.mean_waiting_time == pytest.approx(mm1.mean_waiting_time)
        assert mg1.mean_sojourn_time == pytest.approx(mm1.mean_sojourn_time)
        assert mg1.mean_number_in_system == pytest.approx(mm1.mean_number_in_system)

    def test_deterministic_service_halves_waiting(self):
        """The classic M/D/1 result: Wq is half the M/M/1 value."""
        lam = 2.0
        wq_md1 = MG1Queue(lam, Deterministic(0.25)).mean_waiting_time
        wq_mm1 = MG1Queue(lam, Exponential(0.25)).mean_waiting_time
        assert wq_md1 == pytest.approx(wq_mm1 / 2.0)

    def test_high_variance_service_increases_waiting(self):
        lam = 2.0
        bursty = HyperExponential.from_mean_and_scv(0.25, 5.0)
        assert (
            MG1Queue(lam, bursty).mean_waiting_time
            > MG1Queue(lam, Exponential(0.25)).mean_waiting_time
        )

    def test_unstable_raises(self):
        with pytest.raises(StabilityError):
            _ = MG1Queue(5.0, Exponential(0.25)).mean_waiting_time

    def test_littles_law(self):
        q = MG1Queue(1.0, Erlang(2, 0.3))
        assert q.mean_number_in_system == pytest.approx(q.arrival_rate * q.mean_sojourn_time)
