"""Unit tests for M/M/1, M/M/1/K and M/M/c queue formulas."""

from __future__ import annotations

import math

import pytest

from repro.errors import StabilityError
from repro.queueing.mm1 import MM1KQueue, MM1Queue
from repro.queueing.mmc import MMCQueue, erlang_b, erlang_c


class TestMM1:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MM1Queue(-1.0, 1.0)
        with pytest.raises(ValueError):
            MM1Queue(1.0, 0.0)

    def test_utilization(self):
        q = MM1Queue(arrival_rate=2.0, service_rate=5.0)
        assert q.utilization == pytest.approx(0.4)
        assert q.is_stable

    def test_textbook_values(self):
        # Classic example: λ=2, µ=3 => L=2, W=1, Lq=4/3, Wq=2/3.
        q = MM1Queue(2.0, 3.0)
        assert q.mean_number_in_system == pytest.approx(2.0)
        assert q.mean_sojourn_time == pytest.approx(1.0)
        assert q.mean_number_in_queue == pytest.approx(4.0 / 3.0)
        assert q.mean_waiting_time == pytest.approx(2.0 / 3.0)

    def test_littles_law_consistency(self):
        q = MM1Queue(3.0, 10.0)
        assert q.mean_number_in_system == pytest.approx(q.arrival_rate * q.mean_sojourn_time)
        assert q.mean_number_in_queue == pytest.approx(q.arrival_rate * q.mean_waiting_time)

    def test_sojourn_is_wait_plus_service(self):
        q = MM1Queue(1.0, 4.0)
        assert q.mean_sojourn_time == pytest.approx(q.mean_waiting_time + q.mean_service_time)

    def test_unstable_raises(self):
        q = MM1Queue(5.0, 5.0)
        assert not q.is_stable
        with pytest.raises(StabilityError):
            _ = q.mean_number_in_system
        with pytest.raises(StabilityError):
            _ = q.mean_sojourn_time

    def test_zero_arrivals(self):
        q = MM1Queue(0.0, 2.0)
        assert q.mean_number_in_system == 0.0
        assert q.mean_sojourn_time == pytest.approx(0.5)

    def test_state_probabilities_sum_to_one(self):
        q = MM1Queue(1.0, 2.0)
        total = sum(q.probability_n_in_system(n) for n in range(200))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_probability_wait_exceeds(self):
        q = MM1Queue(1.0, 2.0)
        assert q.probability_wait_exceeds(0.0) == pytest.approx(1.0)
        assert q.probability_wait_exceeds(1.0) == pytest.approx(math.exp(-1.0))

    def test_sojourn_quantile_monotone(self):
        q = MM1Queue(1.0, 2.0)
        assert q.sojourn_time_quantile(0.9) > q.sojourn_time_quantile(0.5)
        with pytest.raises(ValueError):
            q.sojourn_time_quantile(1.0)

    def test_paper_equation_16_form(self):
        """W = 1/(µ − λ) is exactly the paper's Eq. (16)."""
        lam, mu = 3.0, 7.0
        assert MM1Queue(lam, mu).mean_sojourn_time == pytest.approx(1.0 / (mu - lam))


class TestMM1K:
    def test_validation(self):
        with pytest.raises(ValueError):
            MM1KQueue(1.0, 1.0, capacity=0)

    def test_blocking_probability_increases_with_load(self):
        low = MM1KQueue(1.0, 5.0, capacity=3).blocking_probability
        high = MM1KQueue(4.0, 5.0, capacity=3).blocking_probability
        assert high > low

    def test_rho_equal_one_uniform_distribution(self):
        q = MM1KQueue(2.0, 2.0, capacity=4)
        for n in range(5):
            assert q.probability_n_in_system(n) == pytest.approx(1.0 / 5.0)
        assert q.mean_number_in_system == pytest.approx(2.0)

    def test_probabilities_sum_to_one(self):
        q = MM1KQueue(3.0, 4.0, capacity=6)
        total = sum(q.probability_n_in_system(n) for n in range(7))
        assert total == pytest.approx(1.0)

    def test_effective_rate_below_offered(self):
        q = MM1KQueue(10.0, 4.0, capacity=5)
        assert q.effective_arrival_rate < 10.0
        assert q.throughput == pytest.approx(q.effective_arrival_rate)

    def test_large_capacity_approaches_mm1(self):
        mm1 = MM1Queue(1.0, 2.0)
        mm1k = MM1KQueue(1.0, 2.0, capacity=500)
        assert mm1k.mean_number_in_system == pytest.approx(mm1.mean_number_in_system, rel=1e-6)
        assert mm1k.mean_sojourn_time == pytest.approx(mm1.mean_sojourn_time, rel=1e-6)

    def test_out_of_range_state_probability_zero(self):
        q = MM1KQueue(1.0, 2.0, capacity=3)
        assert q.probability_n_in_system(10) == 0.0


class TestErlangFormulas:
    def test_erlang_b_single_server(self):
        # B(1, a) = a / (1 + a)
        assert erlang_b(1, 2.0) == pytest.approx(2.0 / 3.0)

    def test_erlang_b_zero_servers(self):
        assert erlang_b(0, 5.0) == 1.0

    def test_erlang_b_decreases_with_servers(self):
        assert erlang_b(5, 3.0) > erlang_b(10, 3.0)

    def test_erlang_c_bounds(self):
        assert 0.0 <= erlang_c(4, 2.0) <= 1.0
        assert erlang_c(2, 5.0) == 1.0  # overloaded

    def test_erlang_c_single_server_equals_rho(self):
        # For M/M/1, the probability of waiting equals the utilisation.
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b(-1, 1.0)
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)


class TestMMC:
    def test_validation(self):
        with pytest.raises(ValueError):
            MMCQueue(1.0, 1.0, servers=0)

    def test_single_server_matches_mm1(self):
        mm1 = MM1Queue(2.0, 5.0)
        mmc = MMCQueue(2.0, 5.0, servers=1)
        assert mmc.mean_number_in_system == pytest.approx(mm1.mean_number_in_system)
        assert mmc.mean_sojourn_time == pytest.approx(mm1.mean_sojourn_time)
        assert mmc.mean_waiting_time == pytest.approx(mm1.mean_waiting_time)

    def test_more_servers_reduce_waiting(self):
        w2 = MMCQueue(3.0, 2.0, servers=2).mean_waiting_time
        w4 = MMCQueue(3.0, 2.0, servers=4).mean_waiting_time
        assert w4 < w2

    def test_unstable_raises(self):
        q = MMCQueue(10.0, 2.0, servers=3)
        assert not q.is_stable
        with pytest.raises(StabilityError):
            _ = q.mean_waiting_time

    def test_littles_law(self):
        q = MMCQueue(3.0, 2.0, servers=3)
        assert q.mean_number_in_system == pytest.approx(q.arrival_rate * q.mean_sojourn_time)

    def test_state_probabilities_sum_to_one(self):
        q = MMCQueue(3.0, 2.0, servers=3)
        total = sum(q.probability_n_in_system(n) for n in range(300))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_zero_arrivals_waiting_time_zero(self):
        q = MMCQueue(0.0, 2.0, servers=2)
        assert q.mean_waiting_time == 0.0
