"""Unit tests for the Schweitzer approximate MVA solver."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.queueing.approximate_mva import approximate_mva
from repro.queueing.mva import MVAStation, mean_value_analysis


def interactive_system(think: float, demand: float):
    return [
        MVAStation("think", visit_ratio=1.0, service_time=think, is_delay=True),
        MVAStation("server", visit_ratio=1.0, service_time=demand),
    ]


class TestApproximateMVA:
    def test_population_zero(self):
        result = approximate_mva(interactive_system(5.0, 1.0), population=0)
        assert result.throughput == 0.0
        assert float(result.queue_lengths.sum()) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            approximate_mva([], population=5)
        with pytest.raises(ConfigurationError):
            approximate_mva(interactive_system(1.0, 1.0), population=-1)

    @pytest.mark.parametrize("population", [1, 5, 20, 100])
    def test_close_to_exact_mva(self, population):
        stations = interactive_system(think=4.0, demand=0.5)
        exact = mean_value_analysis(stations, population)
        approx = approximate_mva(stations, population)
        assert approx.throughput == pytest.approx(exact.throughput, rel=0.05)
        assert approx.queue_length("server") == pytest.approx(
            exact.queue_length("server"), rel=0.15, abs=0.1
        )

    def test_bottleneck_saturation(self):
        stations = interactive_system(think=2.0, demand=1.0)
        result = approximate_mva(stations, population=500)
        assert result.throughput == pytest.approx(1.0, rel=1e-3)
        assert result.utilization("server") == pytest.approx(1.0, rel=1e-3)

    def test_queue_lengths_sum_to_population(self):
        stations = [
            MVAStation("think", 1.0, 3.0, is_delay=True),
            MVAStation("a", 1.0, 0.5),
            MVAStation("b", 0.25, 1.0),
        ]
        result = approximate_mva(stations, population=40)
        assert float(result.queue_lengths.sum()) == pytest.approx(40.0, rel=1e-6)

    def test_large_population_fast_and_consistent(self):
        """The approximation handles populations far beyond the paper's 256."""
        stations = interactive_system(think=10.0, demand=0.001)
        result = approximate_mva(stations, population=100_000)
        assert result.throughput > 0
        assert result.utilization("server") <= 1.0 + 1e-9

    def test_multi_station_network_matches_exact_shape(self):
        stations = [
            MVAStation("think", 1.0, 4.0, is_delay=True),
            MVAStation("icn1", 0.1, 0.2),
            MVAStation("ecn1", 1.8, 0.15),
            MVAStation("icn2", 0.9, 0.18),
        ]
        exact = mean_value_analysis(stations, 64)
        approx = approximate_mva(stations, 64)
        # The bottleneck identified by both solutions must be the same station.
        exact_bottleneck = max(stations[1:], key=lambda s: exact.utilization(s.name)).name
        approx_bottleneck = max(stations[1:], key=lambda s: approx.utilization(s.name)).name
        assert exact_bottleneck == approx_bottleneck
        assert approx.throughput == pytest.approx(exact.throughput, rel=0.1)
