"""Unit tests for Jackson networks, MVA, finite-source models and Little's law."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, StabilityError
from repro.queueing.finite_source import MachineRepairmanQueue, effective_rate_correction
from repro.queueing.jackson import JacksonNetwork, ServiceCenter
from repro.queueing.littles_law import (
    arrival_rate_from,
    number_in_system,
    require_stable,
    saturation_arrival_rate,
    sojourn_time,
    utilization,
)
from repro.queueing.mm1 import MM1Queue
from repro.queueing.mva import MVAStation, mean_value_analysis


class TestJacksonNetwork:
    def test_single_node_equals_mm1(self):
        net = JacksonNetwork()
        net.add_center(ServiceCenter("only", service_rate=5.0))
        net.set_external_arrival("only", 2.0)
        sol = net.solve()
        mm1 = MM1Queue(2.0, 5.0)
        assert sol.arrival_rate("only") == pytest.approx(2.0)
        assert sol.mean_number("only") == pytest.approx(mm1.mean_number_in_system)
        assert sol.mean_sojourn_time("only") == pytest.approx(mm1.mean_sojourn_time)

    def test_tandem_network_rates(self):
        net = JacksonNetwork()
        net.add_center(ServiceCenter("a", 10.0))
        net.add_center(ServiceCenter("b", 10.0))
        net.set_external_arrival("a", 3.0)
        net.set_routing("a", "b", 1.0)
        sol = net.solve()
        assert sol.arrival_rate("a") == pytest.approx(3.0)
        assert sol.arrival_rate("b") == pytest.approx(3.0)

    def test_feedback_loop_amplifies_arrivals(self):
        # CPU with 50% feedback through a disk (classic example).
        net = JacksonNetwork()
        net.add_center(ServiceCenter("cpu", 10.0))
        net.add_center(ServiceCenter("disk", 5.0))
        net.set_external_arrival("cpu", 2.0)
        net.set_routing("cpu", "disk", 0.5)
        net.set_routing("disk", "cpu", 1.0)
        sol = net.solve()
        # λ_cpu = 2 + λ_disk, λ_disk = 0.5 λ_cpu => λ_cpu = 4, λ_disk = 2.
        assert sol.arrival_rate("cpu") == pytest.approx(4.0)
        assert sol.arrival_rate("disk") == pytest.approx(2.0)

    def test_duplicate_center_rejected(self):
        net = JacksonNetwork()
        net.add_center(ServiceCenter("x", 1.0))
        with pytest.raises(ConfigurationError):
            net.add_center(ServiceCenter("x", 2.0))

    def test_unknown_center_rejected(self):
        net = JacksonNetwork()
        net.add_center(ServiceCenter("x", 1.0))
        with pytest.raises(ConfigurationError):
            net.set_external_arrival("y", 1.0)
        with pytest.raises(ConfigurationError):
            net.set_routing("x", "y", 0.5)

    def test_routing_probabilities_exceeding_one_rejected(self):
        net = JacksonNetwork()
        net.add_center(ServiceCenter("a", 1.0))
        net.add_center(ServiceCenter("b", 1.0))
        net.set_routing("a", "b", 0.7)
        with pytest.raises(ConfigurationError):
            net.set_routing("a", "a", 0.5)

    def test_saturated_network_raises(self):
        net = JacksonNetwork()
        net.add_center(ServiceCenter("slow", 1.0))
        net.set_external_arrival("slow", 2.0)
        with pytest.raises(StabilityError):
            net.solve()

    def test_total_mean_number_and_dict(self):
        net = JacksonNetwork()
        net.add_center(ServiceCenter("a", 10.0))
        net.add_center(ServiceCenter("b", 10.0))
        net.set_external_arrival("a", 1.0)
        net.set_external_arrival("b", 2.0)
        sol = net.solve()
        d = sol.as_dict()
        assert set(d) == {"a", "b"}
        assert sol.total_mean_number == pytest.approx(
            d["a"]["mean_number"] + d["b"]["mean_number"]
        )

    def test_multi_server_center(self):
        net = JacksonNetwork()
        net.add_center(ServiceCenter("pool", service_rate=1.0, servers=4))
        net.set_external_arrival("pool", 3.0)
        sol = net.solve()
        assert sol.utilization("pool") == pytest.approx(0.75)

    def test_empty_network_rejected(self):
        with pytest.raises(ConfigurationError):
            JacksonNetwork().traffic_equations()


class TestMVA:
    def test_single_queue_closed_network(self):
        # One queueing station + think station, textbook interactive system.
        stations = [
            MVAStation("think", visit_ratio=1.0, service_time=5.0, is_delay=True),
            MVAStation("server", visit_ratio=1.0, service_time=1.0),
        ]
        result = mean_value_analysis(stations, population=1)
        # One customer never queues: cycle time = 6, throughput = 1/6.
        assert result.throughput == pytest.approx(1.0 / 6.0)
        assert result.residence_time("server") == pytest.approx(1.0)

    def test_throughput_saturates_at_bottleneck(self):
        stations = [
            MVAStation("think", visit_ratio=1.0, service_time=2.0, is_delay=True),
            MVAStation("bottleneck", visit_ratio=1.0, service_time=1.0),
        ]
        result = mean_value_analysis(stations, population=50)
        assert result.throughput == pytest.approx(1.0, rel=1e-3)
        assert result.utilization("bottleneck") == pytest.approx(1.0, rel=1e-3)

    def test_population_zero(self):
        stations = [MVAStation("s", 1.0, 1.0)]
        result = mean_value_analysis(stations, population=0)
        assert result.throughput == 0.0
        assert result.cycle_time == float("inf")

    def test_queue_lengths_sum_to_population(self):
        stations = [
            MVAStation("think", 1.0, 4.0, is_delay=True),
            MVAStation("a", 1.0, 1.0),
            MVAStation("b", 0.5, 2.0),
        ]
        population = 12
        result = mean_value_analysis(stations, population)
        total_queue = float(result.queue_lengths.sum())
        # Delay-station "queue" counts thinking customers, so totals match N.
        assert total_queue == pytest.approx(population, rel=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            mean_value_analysis([], population=1)
        with pytest.raises(ConfigurationError):
            mean_value_analysis([MVAStation("s", 1.0, 1.0)], population=-1)
        with pytest.raises(ConfigurationError):
            MVAStation("s", -1.0, 1.0)

    def test_as_dict(self):
        stations = [MVAStation("s", 1.0, 1.0)]
        result = mean_value_analysis(stations, population=3)
        assert "s" in result.as_dict()


class TestFiniteSource:
    def test_effective_rate_correction_formula(self):
        """Eq. (7): λ_eff = (N − L)/N · λ."""
        assert effective_rate_correction(0.25, waiting=64.0, population=256) == pytest.approx(
            (256 - 64) / 256 * 0.25
        )

    def test_correction_clamps_waiting(self):
        assert effective_rate_correction(1.0, waiting=500.0, population=100) == 0.0
        assert effective_rate_correction(1.0, waiting=-5.0, population=100) == 1.0

    def test_correction_validation(self):
        with pytest.raises(ValueError):
            effective_rate_correction(1.0, 0.0, population=0)
        with pytest.raises(ValueError):
            effective_rate_correction(-1.0, 0.0, population=10)

    def test_machine_repairman_probabilities_sum_to_one(self):
        q = MachineRepairmanQueue(population=20, request_rate=0.5, service_rate=2.0)
        assert sum(q.state_probabilities()) == pytest.approx(1.0)

    def test_machine_repairman_low_load_matches_open_model(self):
        """With a fast server the effective rate approaches the nominal one."""
        q = MachineRepairmanQueue(population=10, request_rate=0.01, service_rate=100.0)
        assert q.effective_request_rate == pytest.approx(0.01, rel=1e-3)
        assert q.mean_active_sources == pytest.approx(10.0, rel=1e-3)

    def test_machine_repairman_saturation(self):
        """With a slow server, throughput is capped by the service rate."""
        q = MachineRepairmanQueue(population=50, request_rate=1.0, service_rate=2.0)
        assert q.throughput == pytest.approx(2.0, rel=1e-3)
        assert q.server_utilization == pytest.approx(1.0, rel=1e-3)

    def test_response_time_positive(self):
        q = MachineRepairmanQueue(population=5, request_rate=0.5, service_rate=1.0)
        assert q.mean_response_time > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineRepairmanQueue(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MachineRepairmanQueue(5, 0.0, 1.0)
        with pytest.raises(ValueError):
            MachineRepairmanQueue(5, 1.0, 0.0)


class TestLittlesLaw:
    def test_round_trip(self):
        L = number_in_system(2.0, 3.0)
        assert L == 6.0
        assert sojourn_time(L, 2.0) == pytest.approx(3.0)
        assert arrival_rate_from(L, 3.0) == pytest.approx(2.0)

    def test_utilization(self):
        assert utilization(2.0, 4.0) == 0.5
        assert utilization(2.0, 1.0, servers=4) == 0.5

    def test_require_stable(self):
        require_stable(1.0, 2.0)
        with pytest.raises(StabilityError):
            require_stable(3.0, 2.0)

    def test_saturation_rate(self):
        assert saturation_arrival_rate(2.5, servers=4) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sojourn_time(1.0, 0.0)
        with pytest.raises(ValueError):
            arrival_rate_from(1.0, 0.0)
        with pytest.raises(ValueError):
            utilization(-1.0, 1.0)
        with pytest.raises(ValueError):
            number_in_system(-1.0, 1.0)
