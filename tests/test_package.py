"""Package-level tests: public API surface, version, docstrings."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name!r}"

    def test_quickstart_from_docstring(self):
        """The example in the package docstring must actually work."""
        from repro import AnalyticalModel, ModelConfig, paper_evaluation_system
        from repro.network import FAST_ETHERNET, GIGABIT_ETHERNET

        system = paper_evaluation_system(16, GIGABIT_ETHERNET, FAST_ETHERNET)
        report = AnalyticalModel(system, ModelConfig(message_bytes=1024)).evaluate()
        assert report.mean_latency_ms > 0

    @pytest.mark.parametrize(
        "module",
        [
            "repro.des",
            "repro.stats",
            "repro.queueing",
            "repro.topology",
            "repro.network",
            "repro.cluster",
            "repro.core",
            "repro.workload",
            "repro.simulation",
            "repro.experiments",
            "repro.viz",
            "repro.cli",
        ],
    )
    def test_subpackages_importable_and_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} is missing a module docstring"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.des",
            "repro.stats",
            "repro.queueing",
            "repro.topology",
            "repro.network",
            "repro.cluster",
            "repro.core",
            "repro.workload",
            "repro.simulation",
            "repro.experiments",
            "repro.viz",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing attribute {name!r}"

    def test_errors_hierarchy(self):
        from repro.errors import (
            ConfigurationError,
            ConvergenceError,
            ExperimentError,
            ReproError,
            SimulationError,
            StabilityError,
            TopologyError,
        )

        for exc in (
            ConfigurationError,
            ConvergenceError,
            ExperimentError,
            SimulationError,
            StabilityError,
            TopologyError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(StabilityError, ArithmeticError)
