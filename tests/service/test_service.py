"""Tests for the `repro serve` HTTP service (jobs, cache, warm pool).

The HTTP tests run a real :class:`ReproService` on an ephemeral loopback
port and speak to it with :mod:`http.client` — the same wire a curl user
hits.  Execution backends are injected per test: a serial backend keeps
the round-trip tests fast, a blocking stub makes queue-order tests
deterministic, and the real :class:`PersistentPoolBackend` proves the
warm-pool contract.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.cache import ResultCache
from repro.experiments.pipeline import (
    ExperimentRunner,
    ExperimentSpec,
    TableCollector,
    build_plan,
)
from repro.parallel import PersistentPoolBackend, SerialBackend
from repro.service import JobManager, ReproService
from repro.viz.tables import rows_to_csv_text

FP = "c" * 64


def small_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        scenario="case-1",
        mode="both",
        cluster_counts=[2],
        message_sizes=[512.0],
        replications=1,
        simulation_messages=120,
        seed=0,
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


class _Client:
    """Tiny JSON-over-HTTP helper bound to one running service."""

    def __init__(self, service: ReproService) -> None:
        self.host, self.port = service.address

    def request(self, method: str, path: str, body=None, headers=None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = response.read()
        finally:
            conn.close()
        return response.status, payload

    def json(self, method: str, path: str, body=None):
        status, payload = self.request(method, path, body=body)
        return status, json.loads(payload)

    def submit(self, spec: ExperimentSpec):
        return self.json("POST", "/v1/experiments", body=spec.to_json_text())


@pytest.fixture()
def serial_service(tmp_path):
    cache = ResultCache(tmp_path / "cache", fingerprint=FP)
    manager = JobManager(cache, jobs=1, backend=SerialBackend())
    with ReproService(manager) as service:
        yield service


class TestRoundTrip:
    def test_submit_poll_fetch_matches_direct_run(self, serial_service, tmp_path):
        client = _Client(serial_service)
        spec = small_spec()
        status, submitted = client.submit(spec)
        assert status == 202
        assert submitted["state"] in ("queued", "running")
        assert len(submitted["cache_key"]) == 64

        job = serial_service.manager.wait(submitted["id"])
        assert job.state == "done"

        status, body = client.json("GET", submitted["status_url"])
        assert status == 200
        assert body["state"] == "done"
        assert body["progress"] == {"done": 1, "total": 1}
        assert body["spec"]["scenario"] == "case-1"

        status, result = client.json("GET", submitted["result_url"])
        assert status == 200
        # The service's rows are exactly what the pipeline computes directly.
        direct = ExperimentRunner().run(build_plan(spec), TableCollector())
        assert result["rows"] == direct.to_rows()
        assert result["accuracy"] == direct.accuracy_summary().as_dict()
        assert result["cached"] is False

        status, csv_bytes = client.request("GET", submitted["result_url"] + ".csv")
        assert status == 200
        assert csv_bytes.decode("utf-8") == rows_to_csv_text(direct.to_rows())

    def test_resubmission_is_served_from_cache(self, serial_service):
        client = _Client(serial_service)
        spec = small_spec()
        _, first = client.submit(spec)
        serial_service.manager.wait(first["id"])
        _, csv_cold = client.request("GET", first["result_url"] + ".csv")

        _, second = client.submit(spec)
        assert second["id"] != first["id"]
        assert second["cache_key"] == first["cache_key"]
        serial_service.manager.wait(second["id"])
        status, body = client.json("GET", second["status_url"])
        assert body["cached"] is True
        _, csv_warm = client.request("GET", second["result_url"] + ".csv")
        assert csv_warm == csv_cold

    def test_health_reports_cache_and_jobs(self, serial_service):
        client = _Client(serial_service)
        status, health = client.json("GET", "/v1/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["jobs"] == 0
        assert health["cache"]["entries"] == 0

    def test_cache_endpoints(self, serial_service):
        client = _Client(serial_service)
        _, submitted = client.submit(small_spec(mode="analysis"))
        serial_service.manager.wait(submitted["id"])
        key = submitted["cache_key"]

        status, listing = client.json("GET", "/v1/cache")
        assert status == 200
        assert [entry["key"] for entry in listing["entries"]] == [key]
        status, stats = client.json("GET", "/v1/cache/stats")
        assert stats["entries"] == 1
        status, entry = client.json("GET", f"/v1/cache/{key}")
        assert entry["spec"]["scenario"] == "case-1"
        status, body = client.json("DELETE", f"/v1/cache/{key}")
        assert status == 200 and body == {"evicted": key}
        status, _ = client.json("DELETE", f"/v1/cache/{key}")
        assert status == 404


class TestErrors:
    def test_malformed_submissions_are_4xx(self, serial_service):
        client = _Client(serial_service)
        cases = [
            "this is not json",
            json.dumps({"scenario": "no-such-scenario"}),
            json.dumps({"scenario": "case-1", "warp_factor": 9}),
            json.dumps({"scenario": "case-1", "mode": "telepathy"}),
            json.dumps({"scenario": "case-1", "replications": 0}),
        ]
        for body in cases:
            status, response = client.json("POST", "/v1/experiments", body=body)
            assert status == 400, body
            assert response["error"]
        # Nothing was queued by any of them.
        assert serial_service.manager.list_jobs() == []

    def test_empty_body_is_400(self, serial_service):
        status, body = _Client(serial_service).json("POST", "/v1/experiments")
        assert status == 400

    def test_oversized_body_is_413(self, serial_service):
        from repro.service.http import MAX_BODY_BYTES

        client = _Client(serial_service)
        status, _ = client.request(
            "POST", "/v1/experiments", body=b"",
            headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
        )
        assert status == 413

    def test_unknown_paths_are_404(self, serial_service):
        client = _Client(serial_service)
        for method, path in [
            ("GET", "/nope"),
            ("GET", "/v1/nope"),
            ("GET", "/v1/jobs/job-999999"),
            ("GET", "/v1/jobs/job-999999/result"),
            ("GET", "/v1/cache/" + "0" * 64),
            ("POST", "/v1/jobs"),
            ("DELETE", "/v1/jobs"),
        ]:
            status, _ = client.request(method, path, body=b"{}" if method == "POST" else None)
            assert status == 404, (method, path)

    def test_failed_job_is_500_with_error(self, tmp_path):
        class ExplodingBackend(SerialBackend):
            def execute(self, tasks):
                raise RuntimeError("worker fleet on fire")

        cache = ResultCache(tmp_path / "cache", fingerprint=FP)
        manager = JobManager(cache, jobs=1, backend=ExplodingBackend())
        with ReproService(manager) as service:
            client = _Client(service)
            _, submitted = client.submit(small_spec())
            job = manager.wait(submitted["id"])
            assert job.state == "failed"
            status, body = client.json("GET", submitted["result_url"])
            assert status == 500
            assert "worker fleet on fire" in body["error"]
            # The dispatcher survived: an analysis-only job still completes.
            _, ok = client.submit(small_spec(mode="analysis"))
            assert manager.wait(ok["id"]).state == "done"


class _GatedBackend(SerialBackend):
    """A serial backend that waits for an event before executing."""

    def __init__(self, gate: threading.Event) -> None:
        super().__init__()
        self.gate = gate

    def execute(self, tasks):
        assert self.gate.wait(timeout=30)
        return super().execute(tasks)


class TestConcurrency:
    def test_concurrent_submissions_queue_and_dedup(self, tmp_path):
        gate = threading.Event()
        cache = ResultCache(tmp_path / "cache", fingerprint=FP)
        manager = JobManager(cache, jobs=1, backend=_GatedBackend(gate))
        with ReproService(manager) as service:
            client = _Client(service)
            _, first = client.submit(small_spec(seed=0))
            _, second = client.submit(small_spec(seed=1))
            # While both are active, resubmitting either joins the live job.
            _, dup = client.submit(small_spec(seed=1))
            assert dup["id"] == second["id"]
            # A queued/running job's result is a 409, not an error page.
            status, _ = client.json("GET", second["result_url"])
            assert status == 409

            gate.set()
            assert manager.wait(first["id"]).state == "done"
            assert manager.wait(second["id"]).state == "done"
            # Different seeds are different campaigns with different keys.
            assert first["cache_key"] != second["cache_key"]
            status, body = client.json("GET", "/v1/jobs")
            assert {job["state"] for job in body["jobs"]} == {"done"}

    def test_parallel_clients_all_get_answers(self, serial_service):
        client = _Client(serial_service)
        results = {}

        def submit(seed: int) -> None:
            results[seed] = client.submit(small_spec(mode="analysis", seed=seed))

        threads = [threading.Thread(target=submit, args=(seed,)) for seed in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert {status for status, _ in results.values()} == {202}
        ids = {body["id"] for _, body in results.values()}
        assert len(ids) == 4
        for _, body in results.values():
            assert serial_service.manager.wait(body["id"]).state == "done"


class TestWarmPool:
    def test_two_simulation_jobs_share_one_pool(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint=FP)
        backend = PersistentPoolBackend(jobs=1)
        manager = JobManager(cache, jobs=1, backend=backend)
        with ReproService(manager) as service:
            client = _Client(service)
            for seed in (0, 1):
                _, submitted = client.submit(small_spec(seed=seed))
                assert manager.wait(submitted["id"], timeout=120).state == "done"
            status, health = client.json("GET", "/v1/health")
            assert health["pools_created"] == 1
        backend.close()

    def test_journal_removed_after_completed_job(self, serial_service):
        import os

        client = _Client(serial_service)
        _, submitted = client.submit(small_spec())
        serial_service.manager.wait(submitted["id"])
        journal = os.path.join(
            serial_service.manager.state_dir, f"{submitted['cache_key']}.journal"
        )
        assert not os.path.exists(journal)


class TestLoadShedding:
    def test_negative_queue_bound_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint=FP)
        with pytest.raises(ValueError, match="max_queued"):
            JobManager(cache, jobs=1, backend=SerialBackend(), max_queued=-1)

    def test_wait_on_unknown_job_returns_none(self, serial_service):
        assert serial_service.manager.wait("job-999999") is None

    def test_full_queue_is_503_with_retry_after(self, tmp_path):
        import time

        gate = threading.Event()
        cache = ResultCache(tmp_path / "cache", fingerprint=FP)
        manager = JobManager(cache, jobs=1, backend=_GatedBackend(gate), max_queued=1)
        try:
            with ReproService(manager) as service:
                client = _Client(service)
                _, first = client.submit(small_spec(seed=0))
                # Wait for the dispatcher to pick job 1 up so the queue is empty.
                deadline = time.monotonic() + 30
                while manager.queue_depth() > 0:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                _, second = client.submit(small_spec(seed=1))

                # The queue is at its bound: a third campaign is shed.
                host, port = service.address
                conn = http.client.HTTPConnection(host, port, timeout=30)
                try:
                    conn.request(
                        "POST", "/v1/experiments", body=small_spec(seed=2).to_json_text()
                    )
                    response = conn.getresponse()
                    body = json.loads(response.read())
                finally:
                    conn.close()
                assert response.status == 503
                assert "queue is full" in body["error"]
                assert body["retry_after"] > 0
                assert int(response.getheader("Retry-After")) >= 1

                # Resubmitting a queued campaign still joins the live job
                # (dedup wins over the bound).
                _, dup = client.submit(small_spec(seed=1))
                assert dup["id"] == second["id"]

                # Health shows the pressure while the queue is full.
                _, health = client.json("GET", "/v1/health")
                assert health["queued"] == 1
                assert health["max_queued"] == 1

                gate.set()
                assert manager.wait(first["id"]).state == "done"
                assert manager.wait(second["id"]).state == "done"
                # With the queue drained, submissions are accepted again.
                status, third = client.submit(small_spec(seed=2))
                assert status == 202
                assert manager.wait(third["id"]).state == "done"
        finally:
            gate.set()

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint=FP)
        manager = JobManager(cache, jobs=1, backend=SerialBackend())
        assert manager.max_queued == 0
        with ReproService(manager) as service:
            client = _Client(service)
            statuses = [
                client.submit(small_spec(mode="analysis", seed=seed))[0]
                for seed in range(8)
            ]
            assert statuses == [202] * 8
            for job in manager.list_jobs():
                manager.wait(job.id)


class TestShutdown:
    def test_submissions_after_close_are_503(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint=FP)
        manager = JobManager(cache, jobs=1, backend=SerialBackend())
        service = ReproService(manager).start()
        client = _Client(service)
        manager.close()
        try:
            status, body = client.json(
                "POST", "/v1/experiments", body=small_spec().to_json_text()
            )
            assert status == 503
        finally:
            service.stop()
