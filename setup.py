"""Setuptools shim.

The canonical project metadata lives in pyproject.toml; this file exists so
that editable installs (``pip install -e .``) work in offline environments
where the ``wheel`` package (needed for PEP-660 editable wheels) is not
available — pip then falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
