#!/usr/bin/env python3
"""Design-space exploration: pick a multi-cluster configuration with the model.

The paper's motivation (§1) is that "a performance model is a useful tool
for exploring the design space and examining various parameters" when
building a cost-effective system.  This example does exactly that for a
site that must host 256 processors and wants to choose:

* how many clusters to split them into,
* which interconnect technology to buy for the intra- and inter-cluster
  networks, and
* whether a cheap blocking (cascaded-switch) fabric is good enough or a
  full-bisection fat-tree is needed,

under a latency budget.  The analytical model evaluates hundreds of
configurations in well under a second — the point the paper makes against
exhaustive simulation.

Run with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import AnalyticalModel, ModelConfig, paper_evaluation_system
from repro.network import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    MYRINET,
    NetworkTechnology,
)
from repro.viz import format_fixed_width_table

#: Rough per-port cost units used to rank configurations (illustrative only).
TECHNOLOGY_COST = {
    FAST_ETHERNET.name: 1.0,
    GIGABIT_ETHERNET.name: 4.0,
    MYRINET.name: 10.0,
}

#: Latency budget for the application (milliseconds).
LATENCY_BUDGET_MS = 0.5

#: Message size the target application mostly uses.
MESSAGE_BYTES = 1024


@dataclass
class Candidate:
    """One evaluated configuration."""

    clusters: int
    icn: NetworkTechnology
    ecn: NetworkTechnology
    architecture: str
    latency_ms: float
    cost: float

    def as_row(self) -> dict:
        return {
            "clusters": self.clusters,
            "ICN1": self.icn.name,
            "ECN1/ICN2": self.ecn.name,
            "architecture": self.architecture,
            "latency_ms": round(self.latency_ms, 4),
            "relative_cost": round(self.cost, 1),
        }


def configuration_cost(clusters: int, icn: NetworkTechnology, ecn: NetworkTechnology,
                       architecture: str, total_nodes: int = 256) -> float:
    """A simple cost proxy: per-node port cost plus a fat-tree premium."""
    nodes_per_cluster = total_nodes // clusters
    cost = total_nodes * TECHNOLOGY_COST[icn.name] + total_nodes * TECHNOLOGY_COST[ecn.name]
    if architecture == "non-blocking":
        # A fat-tree needs roughly twice the switching hardware of a chain.
        cost *= 1.6
    # Many small clusters need more inter-cluster ports.
    cost += clusters * 8.0 * TECHNOLOGY_COST[ecn.name]
    return cost


def explore() -> List[Candidate]:
    technologies = [FAST_ETHERNET, GIGABIT_ETHERNET, MYRINET]
    candidates: List[Candidate] = []
    for clusters in (2, 4, 8, 16, 32, 64):
        for icn in technologies:
            for ecn in technologies:
                for architecture in ("non-blocking", "blocking"):
                    system = paper_evaluation_system(clusters, icn, ecn)
                    report = AnalyticalModel(
                        system,
                        ModelConfig(architecture=architecture, message_bytes=MESSAGE_BYTES),
                    ).evaluate()
                    candidates.append(
                        Candidate(
                            clusters=clusters,
                            icn=icn,
                            ecn=ecn,
                            architecture=architecture,
                            latency_ms=report.mean_latency_ms,
                            cost=configuration_cost(clusters, icn, ecn, architecture),
                        )
                    )
    return candidates


def main() -> None:
    candidates = explore()
    print(f"Evaluated {len(candidates)} configurations analytically.")
    feasible = [c for c in candidates if c.latency_ms <= LATENCY_BUDGET_MS]
    print(f"{len(feasible)} of them meet the {LATENCY_BUDGET_MS} ms latency budget.")
    print()

    cheapest = sorted(feasible, key=lambda c: c.cost)[:10]
    print("Ten cheapest configurations within the latency budget:")
    print(format_fixed_width_table([c.as_row() for c in cheapest]))
    print()

    fastest = sorted(candidates, key=lambda c: c.latency_ms)[:5]
    print("Five lowest-latency configurations regardless of cost:")
    print(format_fixed_width_table([c.as_row() for c in fastest]))


if __name__ == "__main__":
    main()
