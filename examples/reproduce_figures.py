#!/usr/bin/env python3
"""Reproduce the paper's Figures 4-7 (analysis curves) as ASCII charts.

The paper plots average message latency against the number of clusters of a
256-node Super-Cluster for two network-heterogeneity cases and two
architectures.  This example regenerates all four figures' analytical
curves and renders them in the terminal; pass ``--simulate`` to overlay the
validation simulator (slower: a few minutes for all four figures).

Each figure's simulations are independent, so ``--jobs N`` fans them out
across ``N`` worker processes through :class:`repro.parallel.SweepEngine`
(``--jobs 0`` uses every CPU core).  Seeding is derived per sweep point with
``numpy.random.SeedSequence.spawn``, so the overlaid simulation curves are
bit-identical whatever the job count.

Run with ``python examples/reproduce_figures.py [--simulate] [--jobs 0]``.
"""

from __future__ import annotations

import argparse

from repro.cli import add_jobs_flag
from repro.experiments.figures import FIGURE_SPECS, run_figure


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--simulate", action="store_true",
                        help="also run the validation simulator at every point")
    parser.add_argument("--messages", type=int, default=2_000,
                        help="simulated messages per point when --simulate is given")
    parser.add_argument("--figures", type=int, nargs="*", default=sorted(FIGURE_SPECS),
                        choices=sorted(FIGURE_SPECS), help="which figures to reproduce")
    add_jobs_flag(parser)
    args = parser.parse_args()

    for number in args.figures:
        result = run_figure(
            number,
            include_simulation=args.simulate,
            simulation_messages=args.messages,
            jobs=args.jobs,
        )
        print(result.to_chart())
        print()
        print(result.to_text_table())
        summary = result.accuracy_summary()
        if summary is not None:
            print()
            print(f"Analysis vs simulation accuracy: {summary}")
        print("\n" + "=" * 78 + "\n")


if __name__ == "__main__":
    main()
