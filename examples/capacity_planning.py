#!/usr/bin/env python3
"""Capacity planning: how hard can the paper's platform be driven?

The paper evaluates its model at a deliberately light operating point
(λ = 0.25 msg/s per processor), where queueing is negligible and the
latency is dominated by raw transmission time.  A system operator usually
asks the opposite question: *how far can the message rate grow before the
inter-cluster network saturates, and what does latency look like on the
way there?*

This example sweeps the per-processor generation rate for the Case-1
platform with 16 clusters and reports:

* mean message latency (with the Eq. 7 finite-source correction),
* ICN2 utilisation (the bottleneck centre),
* the effective rate the processors actually achieve (throughput throttling).

It also contrasts the blocking and non-blocking fabrics: the blocking
network saturates roughly two orders of magnitude earlier, which is the
capacity-planning face of the paper's Figures 6-7.

Run with ``python examples/capacity_planning.py``.
"""

from __future__ import annotations

from repro import AnalyticalModel, ModelConfig, paper_evaluation_system
from repro.network import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.viz import format_fixed_width_table, line_chart

RATES = [0.25, 1.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 25.0, 25.5, 26.0]
MESSAGE_BYTES = 1024


def sweep(architecture: str) -> list:
    """Evaluate the model over the rate sweep for one architecture."""
    system = paper_evaluation_system(16, GIGABIT_ETHERNET, FAST_ETHERNET)
    rows = []
    for rate in RATES:
        report = AnalyticalModel(
            system,
            ModelConfig(
                architecture=architecture,
                message_bytes=MESSAGE_BYTES,
                generation_rate=rate,
            ),
        ).evaluate()
        rows.append(
            {
                "offered_rate": rate,
                "effective_rate": round(report.effective_rate, 4),
                "latency_ms": round(report.mean_latency_ms, 4),
                "icn2_utilization": round(report.utilizations["icn2"], 4),
                "waiting_processors": round(report.total_waiting_processors, 2),
            }
        )
    return rows


def main() -> None:
    print("Case-1 platform (ICN1=GE, ECN1/ICN2=FE), C=16, M=1024 bytes\n")

    nonblocking = sweep("non-blocking")
    print("Non-blocking fat-tree fabric:")
    print(format_fixed_width_table(nonblocking))
    print()

    blocking = sweep("blocking")
    print("Blocking linear-array fabric:")
    print(format_fixed_width_table(blocking))
    print()

    chart = line_chart(
        RATES,
        {
            "non-blocking": [row["latency_ms"] for row in nonblocking],
            "blocking": [row["latency_ms"] for row in blocking],
        },
        width=64,
        height=16,
        title="Mean message latency vs offered per-processor rate",
        x_label="offered rate (msg/s per processor)",
        y_label="latency (ms)",
    )
    print(chart)
    print()

    saturating = next(
        (row for row in nonblocking if row["icn2_utilization"] > 0.9), nonblocking[-1]
    )
    print(
        "The non-blocking ICN2 reaches 90% utilisation near "
        f"{saturating['offered_rate']} msg/s per processor; beyond that the "
        "finite-source correction caps the effective rate and latency climbs steeply."
    )


if __name__ == "__main__":
    main()
