#!/usr/bin/env python3
"""Quickstart: evaluate the analytical model and validate it with simulation.

This walks through the library's core loop in a few lines:

1. describe a multi-cluster system (the paper's 256-node Super-Cluster),
2. evaluate the analytical model (mean message latency, Eq. 15),
3. run the discrete-event validation simulator for the same configuration,
4. compare the two (the paper's Figures 4-7 methodology).

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    AnalyticalModel,
    ModelConfig,
    SimulationConfig,
    paper_evaluation_system,
    validate_against_analysis,
)
from repro.network import FAST_ETHERNET, GIGABIT_ETHERNET


def main() -> None:
    # 1. The paper's evaluation platform: 256 processors split into 16
    #    clusters, Gigabit Ethernet inside each cluster (ICN1) and Fast
    #    Ethernet between clusters (ECN1/ICN2) — Table 1, Case 1.
    system = paper_evaluation_system(
        num_clusters=16,
        icn_technology=GIGABIT_ETHERNET,
        ecn_technology=FAST_ETHERNET,
    )
    print(system.describe())
    print()

    # 2. Analytical model (non-blocking fat-tree networks, 1 KiB messages).
    model_config = ModelConfig(architecture="non-blocking", message_bytes=1024)
    report = AnalyticalModel(system, model_config).evaluate()
    print("Analytical model")
    print(f"  outgoing probability P (Eq. 8) : {report.outgoing_probability:.4f}")
    print(f"  effective rate λ_eff (Eq. 7)   : {report.effective_rate:.6f} msg/s")
    print(f"  mean message latency (Eq. 15)  : {report.mean_latency_ms:.4f} ms")
    print(f"    local component              : {report.local_latency_s * 1e3:.4f} ms")
    print(f"    remote component             : {report.remote_latency_s * 1e3:.4f} ms")
    print(f"  ICN2 utilisation               : {report.utilizations['icn2']:.4f}")
    print()

    # 3-4. Validation: run the discrete-event simulator for the same setup
    #      and compare, exactly as the paper does for Figures 4-7.
    sim_config = SimulationConfig(
        architecture="non-blocking",
        message_bytes=1024,
        num_messages=5_000,
        seed=42,
    )
    point = validate_against_analysis(system, model_config, sim_config)
    print("Validation against simulation (5 000 messages)")
    print(f"  analysis   : {point.analysis_latency_ms:.4f} ms")
    print(f"  simulation : {point.simulation_latency_ms:.4f} ms")
    print(f"  rel. error : {point.relative_error * 100:.2f}%")


if __name__ == "__main__":
    main()
