#!/usr/bin/env python3
"""Cluster-of-Clusters study: an LLNL-like heterogeneous conglomerate.

The paper's §3 motivates the HMSCS structure with the LLNL multi-cluster
(MCR, ALC, Thunder and PVC interconnected) whose clusters differ in size,
processor generation and network technology; analysing that family is
listed as future work (§7).  This example uses the library's
Cluster-of-Clusters extension to answer two questions for such a system:

1. What mean message latency does each cluster's workload see, and how much
   does the slow visualisation cluster (PVC) suffer from its Fast-Ethernet
   uplink?
2. Is it worth upgrading the inter-cluster backbone (ICN2) from Gigabit
   Ethernet to a faster fabric?

The extension's predictions are cross-checked against the discrete-event
simulator, which supports heterogeneous systems natively.

Run with ``python examples/heterogeneous_cluster_of_clusters.py``.
"""

from __future__ import annotations

from repro import MultiClusterSimulator, SimulationConfig
from repro.cluster import llnl_like_system
from repro.core import ClusterOfClustersModel, HeterogeneousModelConfig
from repro.network import GIGABIT_ETHERNET, INFINIBAND_4X, MYRINET
from repro.cluster.system import MultiClusterSystem
from repro.viz import bar_chart

MESSAGE_BYTES = 1024


def evaluate(system, label: str) -> float:
    """Evaluate the heterogeneous analytical model and print a summary."""
    report = ClusterOfClustersModel(
        system,
        HeterogeneousModelConfig(architecture="non-blocking", message_bytes=MESSAGE_BYTES),
    ).evaluate()
    print(f"=== {label} ===")
    print(f"mean message latency: {report.mean_latency_ms:.4f} ms")
    names = list(report.per_cluster_remote_latency_s)
    remote_ms = [report.per_cluster_remote_latency_s[name] * 1e3 for name in names]
    print(bar_chart(names, remote_ms, title="per-cluster remote latency (ms)"))
    print()
    return report.mean_latency_s


def main() -> None:
    base = llnl_like_system()
    print(base.describe())
    print()

    base_latency = evaluate(base, "baseline (GE backbone)")

    # Question 2: upgrade the ICN2 backbone.
    upgraded_myrinet = MultiClusterSystem(
        clusters=base.clusters, icn2_technology=MYRINET, switch=base.switch,
        name="llnl-like-myrinet-backbone",
    )
    upgraded_ib = MultiClusterSystem(
        clusters=base.clusters, icn2_technology=INFINIBAND_4X, switch=base.switch,
        name="llnl-like-ib-backbone",
    )
    myrinet_latency = evaluate(upgraded_myrinet, "Myrinet backbone")
    ib_latency = evaluate(upgraded_ib, "InfiniBand 4x backbone")

    print("Backbone upgrade impact on mean latency:")
    print(f"  Gigabit Ethernet : {base_latency * 1e3:.4f} ms (baseline)")
    print(f"  Myrinet          : {myrinet_latency * 1e3:.4f} ms "
          f"({(1 - myrinet_latency / base_latency) * 100:.1f}% faster)")
    print(f"  InfiniBand 4x    : {ib_latency * 1e3:.4f} ms "
          f"({(1 - ib_latency / base_latency) * 100:.1f}% faster)")
    print()

    # Cross-check the baseline prediction against the simulator.
    sim = MultiClusterSimulator(
        base,
        SimulationConfig(architecture="non-blocking", message_bytes=MESSAGE_BYTES,
                         num_messages=4_000, seed=7),
    ).run()
    error = abs(base_latency - sim.mean_latency_s) / sim.mean_latency_s
    print("Simulator cross-check (baseline system, 4 000 messages):")
    print(f"  analysis   : {base_latency * 1e3:.4f} ms")
    print(f"  simulation : {sim.mean_latency_ms:.4f} ms")
    print(f"  rel. error : {error * 100:.2f}%")


if __name__ == "__main__":
    main()
