#!/usr/bin/env python
"""Docs drift gate: the documentation must cover the actual CLI and spec.

Checks (the CI ``docs`` job fails on any finding):

1. Every CLI verb registered in ``repro.cli.build_parser`` has a
   ``## repro <verb>`` section in ``docs/cli.md``, and every long option
   of every verb is mentioned somewhere in that file.
2. Every field of ``ExperimentSpec`` appears in ``docs/spec-reference.md``.
3. Every relative markdown link in ``docs/*.md`` and ``README.md``
   resolves: the target file exists, and when the link carries a
   ``#fragment`` the target contains a heading with that GitHub anchor.

Run it from the repository root::

    python tools/check_docs.py

The script needs only the repository itself (it inserts ``src/`` on
``sys.path``); it is intentionally conservative — a flag merely has to be
*mentioned*, prose quality stays a human concern.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import re
import sys
from typing import Dict, List, Set, Tuple

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

DOCS_DIR = os.path.join(REPO, "docs")

#: argparse house-keeping options that need no documentation.
IGNORED_FLAGS = {"--help", "--version"}

LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def github_anchor(heading: str) -> str:
    """The anchor GitHub generates for a markdown heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_cli_surface() -> Dict[str, Set[str]]:
    """Every CLI verb and its long option strings, straight from argparse."""
    from repro.cli import build_parser

    parser = build_parser()
    surface: Dict[str, Set[str]] = {}
    for action in parser._actions:  # noqa: SLF001 (argparse has no public walk)
        if isinstance(action, argparse._SubParsersAction):
            for verb, sub in action.choices.items():
                flags = {
                    option
                    for sub_action in sub._actions
                    for option in sub_action.option_strings
                    if option.startswith("--") and option not in IGNORED_FLAGS
                }
                surface[verb] = flags
    return surface


def check_cli_docs(problems: List[str]) -> None:
    path = os.path.join(DOCS_DIR, "cli.md")
    if not os.path.exists(path):
        problems.append("docs/cli.md is missing")
        return
    text = read(path)
    for verb, flags in sorted(collect_cli_surface().items()):
        if f"## repro {verb}" not in text:
            problems.append(f"docs/cli.md: no section '## repro {verb}'")
        for flag in sorted(flags):
            if f"`{flag}" not in text and flag not in text:
                problems.append(f"docs/cli.md: flag {flag} of 'repro {verb}' is undocumented")


def check_spec_docs(problems: List[str]) -> None:
    from repro.experiments.pipeline import ExperimentSpec

    path = os.path.join(DOCS_DIR, "spec-reference.md")
    if not os.path.exists(path):
        problems.append("docs/spec-reference.md is missing")
        return
    text = read(path)
    for field in dataclasses.fields(ExperimentSpec):
        if f"`{field.name}`" not in text:
            problems.append(
                f"docs/spec-reference.md: ExperimentSpec field {field.name!r} is undocumented"
            )


def markdown_files() -> List[str]:
    files = [os.path.join(REPO, "README.md")]
    if os.path.isdir(DOCS_DIR):
        files += sorted(
            os.path.join(DOCS_DIR, name)
            for name in os.listdir(DOCS_DIR)
            if name.endswith(".md")
        )
    return [path for path in files if os.path.exists(path)]


def split_link(target: str) -> Tuple[str, str]:
    if "#" in target:
        path, fragment = target.split("#", 1)
        return path, fragment
    return target, ""


def check_links(problems: List[str]) -> None:
    anchors: Dict[str, Set[str]] = {}

    def anchors_of(path: str) -> Set[str]:
        if path not in anchors:
            anchors[path] = {github_anchor(h) for h in HEADING_RE.findall(read(path))}
        return anchors[path]

    for source in markdown_files():
        rel_source = os.path.relpath(source, REPO)
        for target in LINK_RE.findall(read(source)):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, fragment = split_link(target)
            if path_part:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(source), path_part)
                )
                if not resolved.startswith(REPO + os.sep):
                    # GitHub-site-relative URL (e.g. the CI badge), not a file.
                    continue
                if not os.path.exists(resolved):
                    problems.append(f"{rel_source}: broken link {target!r}")
                    continue
            else:
                resolved = source  # same-page fragment
            if fragment and resolved.endswith(".md"):
                if fragment not in anchors_of(resolved):
                    problems.append(
                        f"{rel_source}: link {target!r} points at a missing anchor"
                    )


def main() -> int:
    parser = argparse.ArgumentParser(description="Check docs/ against the code surface.")
    parser.parse_args()
    problems: List[str] = []
    check_cli_docs(problems)
    check_spec_docs(problems)
    check_links(problems)
    if problems:
        for problem in problems:
            print(f"DOCS DRIFT: {problem}", file=sys.stderr)
        print(f"{len(problems)} problem(s) found", file=sys.stderr)
        return 1
    surface = collect_cli_surface()
    flags = sum(len(v) for v in surface.values())
    print(
        f"docs OK: {len(surface)} CLI verbs, {flags} flags, "
        f"{len(markdown_files())} markdown files checked"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
