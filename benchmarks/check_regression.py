"""Throughput-regression gate for the benchmark JSON summaries.

Compares a freshly measured benchmark summary (``BENCH_engine.json`` /
``BENCH_parallel.json``, written by ``bench_engine.py --output`` and
``bench_parallel.py --output``) against a committed baseline and fails when
any throughput metric (``events_per_sec`` / ``tasks_per_sec``) dropped by
more than the allowed factor — the CI default is 2x, generous enough to
absorb runner-hardware jitter while still catching real hot-path
regressions.

Usage::

    python benchmarks/check_regression.py BENCH_engine.json \\
        --baseline benchmarks/BASELINE_engine.json [--max-slowdown 2.0]

A missing baseline file passes with a notice (first run seeds the
trajectory); ``--write-baseline`` copies the current summary over the
baseline, which is how the committed baselines were produced.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from typing import Dict

#: Metric keys treated as throughputs (bigger is better).
THROUGHPUT_KEYS = ("events_per_sec", "messages_per_sec", "tasks_per_sec")


def collect_metrics(summary: object, prefix: str = "") -> Dict[str, float]:
    """Flatten every throughput metric of a summary into ``{label: value}``.

    Rows are labelled by their ``name``/``backend`` field so the comparison
    survives row reordering between runs.
    """
    metrics: Dict[str, float] = {}
    if isinstance(summary, dict):
        label = summary.get("name") or summary.get("backend") or ""
        scope = f"{prefix}{label}." if label else prefix
        for key, value in summary.items():
            if key in THROUGHPUT_KEYS and isinstance(value, (int, float)):
                metrics[f"{scope}{key}"] = float(value)
            elif isinstance(value, (dict, list)):
                metrics.update(collect_metrics(value, scope))
    elif isinstance(summary, list):
        for item in summary:
            metrics.update(collect_metrics(item, prefix))
    return metrics


def compare(current: Dict[str, float], baseline: Dict[str, float],
            max_slowdown: float) -> int:
    """Print a verdict per metric; return the number of regressions.

    Large *improvements* are flagged too: a stale baseline quietly loosens
    the gate — a metric that doubled can then halve again without tripping
    it — so the report recommends re-seeding with ``--write-baseline``
    when gains land.  The improvement threshold carries 10% headroom over
    ``max_slowdown`` because the committed baselines are deliberately
    seeded at half a local measurement (i.e. they sit at exactly the gate
    factor when nothing changed).
    """
    regressions = 0
    improvements = 0
    improvement_factor = max_slowdown * 1.1
    for label in sorted(baseline):
        base = baseline[label]
        now = current.get(label)
        if now is None:
            print(f"  MISSING  {label}: baseline {base:.1f}, absent from current run")
            regressions += 1
            continue
        if base <= 0:
            continue
        ratio = now / base
        if now * max_slowdown < base:
            print(f"  REGRESSED {label}: {now:.1f} vs baseline {base:.1f} "
                  f"({ratio:.2f}x, allowed >= {1.0 / max_slowdown:.2f}x)")
            regressions += 1
        elif now > base * improvement_factor:
            print(f"  IMPROVED  {label}: {now:.1f} vs baseline {base:.1f} ({ratio:.2f}x)")
            improvements += 1
        else:
            print(f"  ok        {label}: {now:.1f} vs baseline {base:.1f} ({ratio:.2f}x)")
    for label in sorted(set(current) - set(baseline)):
        print(f"  new       {label}: {current[label]:.1f} (no baseline yet)")
    if improvements:
        print(f"{improvements} metric(s) improved beyond {improvement_factor:.1f}x: the "
              f"committed baseline understates current throughput and loosens the "
              f"regression gate — re-seed it with --write-baseline")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly measured benchmark JSON summary")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON to compare against")
    parser.add_argument("--max-slowdown", type=float, default=2.0,
                        help="fail when a throughput drops by more than this "
                             "factor (default: 2.0)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="copy the current summary over the baseline and exit")
    args = parser.parse_args()
    if args.max_slowdown < 1.0:
        parser.error(f"--max-slowdown must be >= 1.0, got {args.max_slowdown}")

    with open(args.current, "r", encoding="utf-8") as handle:
        current = collect_metrics(json.load(handle))
    if not current:
        print(f"{args.current}: no throughput metrics found", file=sys.stderr)
        return 2

    if args.write_baseline:
        shutil.copyfile(args.current, args.baseline)
        print(f"seeded baseline {args.baseline} from {args.current}")
        return 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = collect_metrics(json.load(handle))
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; passing (run with "
              "--write-baseline to seed the trajectory)")
        return 0

    print(f"{args.current} vs {args.baseline} (max slowdown {args.max_slowdown}x):")
    regressions = compare(current, baseline, args.max_slowdown)
    if regressions:
        print(f"{regressions} metric(s) regressed beyond {args.max_slowdown}x")
        return 1
    print("all throughput metrics within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
