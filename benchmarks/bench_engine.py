"""Performance benchmarks of the library's own machinery.

Not paper artefacts — these measure the cost of the analytical evaluation
and of the discrete-event simulator so that regressions in the substrate are
visible (per the HPC guide: measure before optimising).

Two entry points:

* under pytest (with ``pytest-benchmark``) the ``test_*`` functions below
  give calibrated statistics for local optimisation work;
* as a script — ``PYTHONPATH=src python benchmarks/bench_engine.py
  [--quick] [--output BENCH_engine.json]`` — a dependency-free timing pass
  emits one JSON summary with ``events_per_sec`` per kernel, which is what
  the CI ``bench`` job records and feeds to
  ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import time

from _bench_utils import pytest_or_stub

pytest = pytest_or_stub()

from repro.cluster.presets import paper_evaluation_system
from repro.core.model import AnalyticalModel, ModelConfig
from repro.des.core import Environment
from repro.des.resources import Resource
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig


@pytest.mark.benchmark(group="engine")
def test_analytical_model_evaluation_speed(benchmark):
    """One full analytical evaluation (fixed point included)."""
    system = paper_evaluation_system(16, GIGABIT_ETHERNET, FAST_ETHERNET)
    config = ModelConfig(architecture="non-blocking", message_bytes=1024)

    def evaluate():
        return AnalyticalModel(system, config).evaluate().mean_latency_s

    latency = benchmark(evaluate)
    assert latency > 0


@pytest.mark.benchmark(group="engine")
def test_des_event_throughput(benchmark):
    """Raw kernel throughput: a chain of timeouts through a shared resource.

    Reports ``events_per_sec`` in ``extra_info`` so the before/after effect
    of kernel hot-path work (``__slots__``, inlined Timeout scheduling) is
    directly visible in the benchmark output.
    """
    EVENTS_PER_RUN = 10_000  # 2000 processes x (request + timeout + ...) events

    events = benchmark(lambda: _resource_kernel(2_000))
    assert events == EVENTS_PER_RUN
    benchmark.extra_info["events_per_sec"] = EVENTS_PER_RUN / benchmark.stats.stats.min


@pytest.mark.benchmark(group="engine")
def test_des_timeout_chain_event_rate(benchmark):
    """Pure event-loop rate: one process yielding 50k timeouts back to back.

    This is the tightest loop the kernel has — no resources, no conditions —
    so it isolates the cost of ``Environment.timeout`` + ``step``.
    """
    CHAIN = 50_000

    processed = benchmark(lambda: _timeout_chain(CHAIN))
    assert processed == CHAIN + 2  # + Initialize + process-termination events
    benchmark.extra_info["events_per_sec"] = processed / benchmark.stats.stats.min


@pytest.mark.benchmark(group="engine")
def test_simulator_throughput_small_system(benchmark):
    """End-to-end simulator cost for a 32-node system and 1 000 messages."""
    system = paper_evaluation_system(4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32)
    config = SimulationConfig(num_messages=1_000, seed=1)

    def run_sim():
        return MultiClusterSimulator(system, config).run().measured_messages

    measured = benchmark(run_sim)
    assert measured > 0


def _resource_kernel(processes: int) -> int:
    """The resource-chain kernel at a configurable size; returns event count."""
    env = Environment()
    resource = Resource(env, capacity=1)

    def user(env, resource):
        with resource.request() as req:
            yield req
            yield env.timeout(1.0)

    for _ in range(processes):
        env.process(user(env, resource))
    env.run()
    assert env.now == processes
    return 5 * processes  # request + grant + timeout + release + termination


def _timeout_chain(chain: int) -> int:
    """The pure event-loop kernel; returns the number of processed events."""
    env = Environment()

    def chain_proc(env):
        for _ in range(chain):
            yield env.timeout(1.0)

    env.process(chain_proc(env))
    return env.run_until_empty()


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds of ``repeats`` runs of ``fn()``."""
    best = float("inf")
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_standalone(quick: bool = False, repeats: int = 3) -> dict:
    """Time every kernel without pytest-benchmark; one JSON-able summary.

    ``quick`` shrinks the problem sizes to keep the whole pass in a few
    seconds on a 1-CPU CI box; events/sec is size-independent enough for
    the >2x regression gate of ``check_regression.py``.
    """
    chain = 10_000 if quick else 50_000
    processes = 500 if quick else 2_000
    messages = 300 if quick else 1_000

    system = paper_evaluation_system(4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32)
    sim_config = SimulationConfig(num_messages=messages, seed=1)
    model_system = paper_evaluation_system(16, GIGABIT_ETHERNET, FAST_ETHERNET)
    model_config = ModelConfig(architecture="non-blocking", message_bytes=1024)

    results = []
    chain_events = _timeout_chain(chain)  # warm-up + event count
    seconds = _best_of(lambda: _timeout_chain(chain), repeats)
    results.append({
        "name": "des_timeout_chain",
        "seconds": round(seconds, 6),
        "events_per_sec": round(chain_events / seconds, 1),
    })
    kernel_events = _resource_kernel(processes)
    seconds = _best_of(lambda: _resource_kernel(processes), repeats)
    results.append({
        "name": "des_resource_kernel",
        "seconds": round(seconds, 6),
        "events_per_sec": round(kernel_events / seconds, 1),
    })
    seconds = _best_of(
        lambda: MultiClusterSimulator(system, sim_config).run().measured_messages, repeats
    )
    results.append({
        "name": "simulator_small_system",
        "seconds": round(seconds, 6),
        "events_per_sec": round(messages / seconds, 1),  # messages/sec, same gate
    })
    seconds = _best_of(
        lambda: AnalyticalModel(model_system, model_config).evaluate().mean_latency_s, repeats
    )
    results.append({
        "name": "analytical_evaluation",
        "seconds": round(seconds, 6),
        "events_per_sec": round(1.0 / seconds, 1),  # evaluations/sec
    })
    return {
        "benchmark": "bench_engine",
        "quick": quick,
        "repeats": repeats,
        "results": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description="Standalone engine benchmark (JSON output).")
    parser.add_argument("--quick", action="store_true",
                        help="small problem sizes for CI (a few seconds total)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions; the minimum is reported (default: 3)")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the JSON summary to this path")
    args = parser.parse_args()
    summary = run_standalone(quick=args.quick, repeats=args.repeats)
    text = json.dumps(summary, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


if __name__ == "__main__":
    main()
