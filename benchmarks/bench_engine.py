"""Performance benchmarks of the library's own machinery.

Not paper artefacts — these measure the cost of the analytical evaluation
and of the discrete-event simulator so that regressions in the substrate are
visible (per the HPC guide: measure before optimising).
"""

from __future__ import annotations

import pytest

from repro.cluster.presets import paper_evaluation_system
from repro.core.model import AnalyticalModel, ModelConfig
from repro.des.core import Environment
from repro.des.resources import Resource
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig


@pytest.mark.benchmark(group="engine")
def test_analytical_model_evaluation_speed(benchmark):
    """One full analytical evaluation (fixed point included)."""
    system = paper_evaluation_system(16, GIGABIT_ETHERNET, FAST_ETHERNET)
    config = ModelConfig(architecture="non-blocking", message_bytes=1024)

    def evaluate():
        return AnalyticalModel(system, config).evaluate().mean_latency_s

    latency = benchmark(evaluate)
    assert latency > 0


@pytest.mark.benchmark(group="engine")
def test_des_event_throughput(benchmark):
    """Raw kernel throughput: a chain of timeouts through a shared resource.

    Reports ``events_per_sec`` in ``extra_info`` so the before/after effect
    of kernel hot-path work (``__slots__``, inlined Timeout scheduling) is
    directly visible in the benchmark output.
    """
    EVENTS_PER_RUN = 10_000  # 2000 processes x (request + timeout + ...) events

    def run_kernel():
        env = Environment()
        resource = Resource(env, capacity=1)

        def user(env, resource):
            with resource.request() as req:
                yield req
                yield env.timeout(1.0)

        for _ in range(2_000):
            env.process(user(env, resource))
        env.run()
        return env.now

    final_time = benchmark(run_kernel)
    assert final_time == pytest.approx(2_000.0)
    benchmark.extra_info["events_per_sec"] = EVENTS_PER_RUN / benchmark.stats.stats.min


@pytest.mark.benchmark(group="engine")
def test_des_timeout_chain_event_rate(benchmark):
    """Pure event-loop rate: one process yielding 50k timeouts back to back.

    This is the tightest loop the kernel has — no resources, no conditions —
    so it isolates the cost of ``Environment.timeout`` + ``step``.
    """
    CHAIN = 50_000

    def run_chain():
        env = Environment()

        def chain(env):
            for _ in range(CHAIN):
                yield env.timeout(1.0)

        env.process(chain(env))
        return env.run_until_empty()

    processed = benchmark(run_chain)
    assert processed == CHAIN + 2  # + Initialize + process-termination events
    benchmark.extra_info["events_per_sec"] = processed / benchmark.stats.stats.min


@pytest.mark.benchmark(group="engine")
def test_simulator_throughput_small_system(benchmark):
    """End-to-end simulator cost for a 32-node system and 1 000 messages."""
    system = paper_evaluation_system(4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32)
    config = SimulationConfig(num_messages=1_000, seed=1)

    def run_sim():
        return MultiClusterSimulator(system, config).run().measured_messages

    measured = benchmark(run_sim)
    assert measured > 0
