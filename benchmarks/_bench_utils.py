"""Shared constants and helpers for the benchmark harness.

Set ``REPRO_FULL_SCALE=1`` in the environment to run the simulation benches
at the paper's exact scale (10 000 messages per point over the full
cluster-count grid) instead of the faster default.
"""

from __future__ import annotations

import os


def pytest_or_stub():
    """The real pytest, or a stand-in whose mark decorators are no-ops.

    The ``bench_*.py`` modules double as pytest-benchmark suites and as
    standalone scripts (``--quick --output ...``, the CI bench job); the
    standalone mode must run with numpy alone, so a missing pytest cannot
    be a hard error — only the ``@pytest.mark.benchmark`` decorators need
    to keep parsing.
    """
    try:
        import pytest
    except ImportError:
        class _Mark:
            def __getattr__(self, _name):
                return lambda **_kwargs: (lambda fn: fn)

        class _PytestStub:
            mark = _Mark()

        return _PytestStub()
    return pytest

#: Number of simulated messages per point used by the benchmarks.
SIM_MESSAGES = 10_000 if os.environ.get("REPRO_FULL_SCALE") == "1" else 2_000

#: Cluster-count grid used for simulation benches (the analysis benches
#: always sweep the paper's full grid — it is closed-form and fast).
SIM_CLUSTER_COUNTS = (
    (1, 2, 4, 8, 16, 32, 64, 128, 256)
    if os.environ.get("REPRO_FULL_SCALE") == "1"
    else (1, 4, 16, 64, 256)
)


def format_series(result) -> str:
    """Render a FigureResult as the rows the paper plots (for bench logs)."""
    lines = [result.spec.title]
    for size in result.message_sizes:
        points = result.points_for_size(size)
        analysis = ", ".join(f"{p.analysis_latency_ms:.4f}" for p in points)
        lines.append(f"  Analysis,M={size}:   [{analysis}] ms")
        if any(p.simulation_latency_ms is not None for p in points):
            simulated = ", ".join(
                f"{p.simulation_latency_ms:.4f}" if p.simulation_latency_ms is not None else "-"
                for p in points
            )
            lines.append(f"  Simulation,M={size}: [{simulated}] ms")
    return "\n".join(lines)
