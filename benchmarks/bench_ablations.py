"""Benchmarks for the ablation studies called out in DESIGN.md.

These are not paper figures; they probe the modelling decisions the paper
makes (switch size, switch latency, operating point, the Eq. 7 fixed point)
and record how each one shapes the predicted latency.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    fixed_point_vs_exact_mva,
    sweep_generation_rate,
    sweep_message_size,
    sweep_switch_latency,
    sweep_switch_ports,
)


@pytest.mark.benchmark(group="ablations")
def test_ablation_switch_ports(benchmark, figure_printer):
    """Pr sweep: the C=16 'different behaviour' moves with the switch size."""
    study = benchmark(sweep_switch_ports)
    assert len(study.rows) == 6
    figure_printer.append(study.to_markdown())


@pytest.mark.benchmark(group="ablations")
def test_ablation_switch_latency(benchmark, figure_printer):
    """α_sw sweep: latency must be monotone in the per-switch latency."""
    study = benchmark(sweep_switch_latency)
    assert study.latencies() == sorted(study.latencies())
    figure_printer.append(study.to_markdown())


@pytest.mark.benchmark(group="ablations")
def test_ablation_generation_rate(benchmark, figure_printer):
    """λ sweep: the paper's 0.25 msg/s operating point is nearly unloaded."""
    study = benchmark(sweep_generation_rate)
    assert study.latencies() == sorted(study.latencies())
    # At the paper's rate the ICN2 utilisation is far below saturation.
    assert study.rows[0].extra["icn2_utilization"] < 0.05
    figure_printer.append(study.to_markdown())


@pytest.mark.benchmark(group="ablations")
def test_ablation_message_size(benchmark, figure_printer):
    """M sweep beyond the paper's 512/1024 bytes."""
    study = benchmark(sweep_message_size)
    assert study.latencies() == sorted(study.latencies())
    figure_printer.append(study.to_markdown())


@pytest.mark.benchmark(group="ablations")
def test_ablation_fixed_point_vs_mva(benchmark, figure_printer):
    """Eq. (7) fixed point vs the exact closed-network (MVA) solution."""
    study = benchmark(fixed_point_vs_exact_mva)
    fixed_point_ms, mva_ms = study.latencies()
    assert fixed_point_ms == pytest.approx(mva_ms, rel=0.15)
    figure_printer.append(
        f"Fixed point (Eq. 7) vs exact MVA at the paper's operating point: "
        f"{fixed_point_ms:.4f} ms vs {mva_ms:.4f} ms"
    )
