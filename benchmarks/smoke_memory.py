"""Memory-cap smoke test of the streaming observation layer.

Runs one closed-loop simulation under a hard ``RLIMIT_AS`` address-space
cap and reports the outcome as JSON.  The cap is applied *relative to the
process's own post-import footprint* (``VmSize`` from ``/proc/self/status``
plus ``--slack-mb``), so the test measures what the run *adds* — the
interpreter/NumPy baseline varies across machines and would otherwise
swallow the budget.

Exit codes:

* 0 — the run finished under the cap (JSON result on stdout);
* 9 — the run hit the cap (``MemoryError``), which is the *expected*
  outcome for ``--mode array`` at large message counts: the array sink
  retains every observation, so its memory ceiling is O(messages).  The
  online sink is O(1) in messages and must survive the same cap at 10x
  the length — CI pins exactly that contract::

      python benchmarks/smoke_memory.py --mode online --messages 600000 --slack-mb 48

Requires Linux (``/proc`` + ``resource``); used by the CI ``memory-smoke``
step and by ``tests/simulation/test_stats_mode.py``.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys

EXIT_OOM = 9


def _vm_size_mb() -> float:
    """Current virtual size of this process in MiB (Linux)."""
    with open("/proc/self/status", "r", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) / 1024.0
    raise RuntimeError("VmSize not found in /proc/self/status")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("array", "online"), required=True,
                        help="stats sink of the run")
    parser.add_argument("--messages", type=int, required=True,
                        help="closed-loop messages to simulate")
    parser.add_argument("--slack-mb", type=float, default=48.0,
                        help="address-space headroom above the post-import "
                             "footprint (default: 48 MiB)")
    parser.add_argument("--clusters", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--no-cap", action="store_true",
                        help="skip the rlimit (pure RSS measurement run)")
    args = parser.parse_args()

    # Import the full simulation stack and build the system BEFORE the cap:
    # the budget must cover only what the run itself allocates.
    from repro.cluster.presets import paper_evaluation_system
    from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
    from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig

    system = paper_evaluation_system(
        args.clusters, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32
    )
    config = SimulationConfig(
        num_messages=args.messages, seed=args.seed, stats_mode=args.mode
    )
    sim = MultiClusterSimulator(system, config)

    baseline_mb = _vm_size_mb()
    cap_mb = None
    old_soft, old_hard = resource.getrlimit(resource.RLIMIT_AS)
    if not args.no_cap:
        # Cap only the *soft* limit: restoring it after a MemoryError needs
        # no privileges, and without the restore even printing the failure
        # JSON can die of a second MemoryError.
        cap_mb = baseline_mb + args.slack_mb
        cap_bytes = int(cap_mb * 1024 * 1024)
        resource.setrlimit(resource.RLIMIT_AS, (cap_bytes, old_hard))

    try:
        result = sim.run()
    except MemoryError:
        resource.setrlimit(resource.RLIMIT_AS, (old_soft, old_hard))
        sim = None  # release the run's buffers before reporting
        print(json.dumps({
            "ok": False,
            "error": "MemoryError",
            "mode": args.mode,
            "messages": args.messages,
            "cap_mb": cap_mb,
        }))
        return EXIT_OOM

    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    print(json.dumps({
        "ok": True,
        "mode": args.mode,
        "messages": args.messages,
        "measured_messages": result.measured_messages,
        "mean_latency_s": result.mean_latency_s,
        "baseline_mb": round(baseline_mb, 1),
        "cap_mb": None if cap_mb is None else round(cap_mb, 1),
        "peak_rss_mb": round(peak_rss_mb, 1),
    }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
