"""Benchmark / regeneration harness for **Figure 5** of the paper.

Figure 5: average message latency vs number of clusters, non-blocking
(fat-tree) networks, Case-2 (ICN1 = Fast Ethernet, ECN1/ICN2 = Gigabit
Ethernet), message sizes 512 and 1024 bytes, analysis and simulation.
"""

from __future__ import annotations

import pytest

from _bench_utils import SIM_CLUSTER_COUNTS, SIM_MESSAGES, format_series
from repro.experiments.figures import run_figure

FIGURE = 5


@pytest.mark.benchmark(group="figure5")
def test_figure5_analysis_series(benchmark, figure_printer):
    """Analytical curves of Figure 5 over the paper's full sweep grid."""
    result = benchmark(run_figure, FIGURE, include_simulation=False)
    assert len(result.points) == 18
    for size in (512, 1024):
        series = [p.analysis_latency_ms for p in result.points_for_size(size)]
        assert series[-1] > series[0]
    figure_printer.append(format_series(result))


@pytest.mark.benchmark(group="figure5")
def test_figure5_analysis_plus_simulation(benchmark, figure_printer):
    """Analysis + validation simulation for Figure 5 (reduced grid by default)."""
    result = benchmark.pedantic(
        run_figure,
        args=(FIGURE,),
        kwargs=dict(
            include_simulation=True,
            cluster_counts=list(SIM_CLUSTER_COUNTS),
            simulation_messages=SIM_MESSAGES,
            seed=5,
        ),
        iterations=1,
        rounds=1,
    )
    summary = result.accuracy_summary()
    assert summary is not None
    assert summary.mape_percent < 20.0
    figure_printer.append(format_series(result) + f"\n  accuracy: {summary}")
