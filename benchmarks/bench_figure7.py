"""Benchmark / regeneration harness for **Figure 7** of the paper.

Figure 7: average message latency vs number of clusters, **blocking**
(linear switch array) networks, Case-2 (ICN1 = Fast Ethernet, ECN1/ICN2 =
Gigabit Ethernet), message sizes 512 and 1024 bytes, analysis and simulation.
"""

from __future__ import annotations

import pytest

from _bench_utils import SIM_CLUSTER_COUNTS, SIM_MESSAGES, format_series
from repro.experiments.figures import run_figure

FIGURE = 7


@pytest.mark.benchmark(group="figure7")
def test_figure7_analysis_series(benchmark, figure_printer):
    """Analytical curves of Figure 7 over the paper's full sweep grid."""
    result = benchmark(run_figure, FIGURE, include_simulation=False)
    assert len(result.points) == 18
    assert min(p.analysis_latency_ms for p in result.points) > 0
    figure_printer.append(format_series(result))


@pytest.mark.benchmark(group="figure7")
def test_figure7_analysis_plus_simulation(benchmark, figure_printer):
    """Analysis + validation simulation for Figure 7 (reduced grid by default)."""
    result = benchmark.pedantic(
        run_figure,
        args=(FIGURE,),
        kwargs=dict(
            include_simulation=True,
            cluster_counts=list(SIM_CLUSTER_COUNTS),
            simulation_messages=SIM_MESSAGES,
            seed=7,
        ),
        iterations=1,
        rounds=1,
    )
    summary = result.accuracy_summary()
    assert summary is not None
    assert summary.mape_percent < 25.0
    figure_printer.append(format_series(result) + f"\n  accuracy: {summary}")
