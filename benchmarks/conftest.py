"""Pytest fixtures for the benchmark harness."""

from __future__ import annotations

from typing import List

import pytest


@pytest.fixture(scope="session")
def figure_printer():
    """Collect reproduced figure series and print them at session end."""
    collected: List[str] = []
    yield collected
    if collected:
        print("\n" + "=" * 72)
        print("Reproduced paper series")
        print("=" * 72)
        for text in collected:
            print(text)
            print("-" * 72)
