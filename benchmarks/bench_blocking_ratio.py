"""Benchmark for the §6 blocking-vs-non-blocking latency ratio claim.

The paper states that the average message latency of the blocking network is
"something between 1.4 to 3.1 times" the non-blocking one.  This bench
recomputes the ratio over the full (scenario, message size, cluster count)
grid and records the observed band; the quantitative comparison against the
paper's band is discussed in EXPERIMENTS.md (our band is wider because the
Eq. 21 contention term grows with N/2).
"""

from __future__ import annotations

import pytest

from repro.experiments.blocking_ratio import run_blocking_ratio_study


@pytest.mark.benchmark(group="ratio")
def test_blocking_ratio_study(benchmark, figure_printer):
    """Blocking/non-blocking ratio over the paper's full sweep grid."""
    study = benchmark(run_blocking_ratio_study)
    # The directional claim must hold at every point: blocking is slower.
    assert study.blocking_always_slower()
    assert study.min_ratio > 1.0
    figure_printer.append(
        "Blocking / non-blocking mean latency ratio (paper: 1.4 - 3.1):\n"
        f"  observed band {study.min_ratio:.2f} - {study.max_ratio:.2f} "
        f"(mean {study.mean_ratio:.2f}) over {len(study.points)} points"
    )


@pytest.mark.benchmark(group="ratio")
def test_blocking_ratio_small_cluster_band(benchmark, figure_printer):
    """Ratio band restricted to the moderate-C region (4..64 clusters).

    The contention term of Eq. (21) is proportional to the number of nodes
    attached to a single network, so the paper's 1.4-3.1x band is closest to
    our results where neither N0 nor C is extreme.
    """
    study = benchmark(
        run_blocking_ratio_study, cluster_counts=[4, 8, 16, 32, 64], message_sizes=[512, 1024]
    )
    assert study.blocking_always_slower()
    figure_printer.append(
        "Blocking ratio, moderate cluster counts (C in 4..64): "
        f"{study.min_ratio:.2f} - {study.max_ratio:.2f} (mean {study.mean_ratio:.2f})"
    )
