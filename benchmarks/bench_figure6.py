"""Benchmark / regeneration harness for **Figure 6** of the paper.

Figure 6: average message latency vs number of clusters, **blocking**
(linear switch array) networks, Case-1 (ICN1 = Gigabit Ethernet, ECN1/ICN2 =
Fast Ethernet), message sizes 512 and 1024 bytes, analysis and simulation.
"""

from __future__ import annotations

import pytest

from _bench_utils import SIM_CLUSTER_COUNTS, SIM_MESSAGES, format_series
from repro.experiments.figures import run_figure

FIGURE = 6


@pytest.mark.benchmark(group="figure6")
def test_figure6_analysis_series(benchmark, figure_printer):
    """Analytical curves of Figure 6 over the paper's full sweep grid."""
    result = benchmark(run_figure, FIGURE, include_simulation=False)
    assert len(result.points) == 18
    # Blocking latencies must exceed the corresponding non-blocking (Figure 4)
    # values; the full comparison lives in bench_blocking_ratio.py.
    assert min(p.analysis_latency_ms for p in result.points) > 0
    figure_printer.append(format_series(result))


@pytest.mark.benchmark(group="figure6")
def test_figure6_analysis_plus_simulation(benchmark, figure_printer):
    """Analysis + validation simulation for Figure 6 (reduced grid by default)."""
    result = benchmark.pedantic(
        run_figure,
        args=(FIGURE,),
        kwargs=dict(
            include_simulation=True,
            cluster_counts=list(SIM_CLUSTER_COUNTS),
            simulation_messages=SIM_MESSAGES,
            seed=6,
        ),
        iterations=1,
        rounds=1,
    )
    summary = result.accuracy_summary()
    assert summary is not None
    assert summary.mape_percent < 25.0
    figure_printer.append(format_series(result) + f"\n  accuracy: {summary}")
