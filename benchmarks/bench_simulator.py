"""End-to-end throughput benchmarks of the simulation layer.

Where ``bench_engine.py`` times the bare DES kernel, this module times the
*simulators* the paper's validation actually runs: the closed-loop
:class:`MultiClusterSimulator`, the open-loop :class:`TraceDrivenSimulator`
and the vectorized analytical figure sweep — the three paths PR 4
optimized (slotted events + virtual FIFO service centres, batched variate
streams, NumPy grid evaluation).

Two entry points, like the other benches:

* under pytest (with ``pytest-benchmark``) the ``test_*`` functions give
  calibrated statistics for local optimisation work;
* as a script — ``PYTHONPATH=src python benchmarks/bench_simulator.py
  [--quick] [--output BENCH_simulator.json]`` — a dependency-free timing
  pass emits one JSON summary with ``messages_per_sec`` (and
  ``events_per_sec``) per workload for the CI ``bench`` job and
  ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

from _bench_utils import pytest_or_stub

pytest = pytest_or_stub()

from repro.cluster.presets import paper_evaluation_system
from repro.core.model import ModelConfig
from repro.core.vectorized import evaluate_latency_grid
from repro.experiments.scenarios import CASE_1, PAPER_PARAMETERS, build_scenario_system
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig
from repro.simulation.trace_simulator import TraceDrivenSimulator, TraceSimulationConfig
from repro.simulation.vectorized_replay import VectorizedClosedLoopSimulator, replay_trace
from repro.workload.messages import generate_trace


def _closed_loop(system, messages: int, seed: int = 1, stats_mode: str = "array") -> tuple:
    """One closed-loop run; returns (measured messages, events scheduled)."""
    sim = MultiClusterSimulator(
        system, SimulationConfig(num_messages=messages, seed=seed, stats_mode=stats_mode)
    )
    result = sim.run()
    return result.measured_messages, next(sim.env._eid)


def _peak_rss_mb(stats_mode: str, messages: int) -> float:
    """Peak RSS (MiB) of one closed-loop run, measured in a fresh subprocess.

    Delegates to ``smoke_memory.py --no-cap`` so the figure is the whole
    process (interpreter + run), uncontaminated by this process's history.
    Returns NaN where the probe is unavailable (non-Linux).
    """
    script = os.path.join(os.path.dirname(os.path.abspath(__file__)), "smoke_memory.py")
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(script), "..", "src"))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    try:
        proc = subprocess.run(
            [sys.executable, script, "--mode", stats_mode,
             "--messages", str(messages), "--no-cap"],
            capture_output=True, text=True, timeout=600, check=True, env=env,
        )
        return float(json.loads(proc.stdout)["peak_rss_mb"])
    except (subprocess.SubprocessError, OSError, ValueError, KeyError):
        return float("nan")


def _trace_replay(system, trace) -> tuple:
    """One open-loop trace replay; returns (completed, events scheduled)."""
    sim = TraceDrivenSimulator(system, trace, TraceSimulationConfig(seed=3))
    result = sim.run()
    return result.completed_messages, next(sim.env._eid)


def _vectorized_replay(system, trace) -> int:
    """One event-loop-free trace replay (same inputs as ``_trace_replay``)."""
    result = replay_trace(system, trace, TraceSimulationConfig(seed=3))
    return result.completed_messages


def _vectorized_closed_loop(system, messages: int, seed: int = 1) -> int:
    """One closed-loop run on the lean vectorized engine."""
    sim = VectorizedClosedLoopSimulator(
        system, SimulationConfig(num_messages=messages, seed=seed)
    )
    return sim.run().measured_messages


def _figure_grid(cluster_counts: tuple) -> int:
    """Vectorized analytical sweep over both architectures and sizes."""
    systems = {nc: build_scenario_system(CASE_1, nc, PAPER_PARAMETERS) for nc in cluster_counts}
    pairs = [
        (systems[nc], ModelConfig(architecture=arch, message_bytes=float(mb)))
        for arch in ("non-blocking", "blocking")
        for mb in PAPER_PARAMETERS.message_sizes
        for nc in cluster_counts
    ]
    return len(evaluate_latency_grid(pairs))


@pytest.mark.benchmark(group="simulator")
def test_closed_loop_simulator_throughput(benchmark):
    """End-to-end closed-loop simulator messages/second (32-node system)."""
    system = paper_evaluation_system(4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32)
    measured, _ = benchmark(lambda: _closed_loop(system, 1_000))
    assert measured > 0
    benchmark.extra_info["messages_per_sec"] = 1_000 / benchmark.stats.stats.min


@pytest.mark.benchmark(group="simulator")
def test_closed_loop_online_sink_throughput(benchmark):
    """Closed-loop throughput with the bounded-memory streaming sinks."""
    system = paper_evaluation_system(4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32)
    measured, _ = benchmark(lambda: _closed_loop(system, 1_000, stats_mode="online"))
    assert measured > 0
    benchmark.extra_info["messages_per_sec"] = 1_000 / benchmark.stats.stats.min


@pytest.mark.benchmark(group="simulator")
def test_trace_replay_throughput(benchmark):
    """Open-loop trace replay messages/second."""
    system = paper_evaluation_system(4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32)
    trace = generate_trace([8, 8, 8, 8], num_messages=1_000, seed=5)
    completed, _ = benchmark(lambda: _trace_replay(system, trace))
    assert completed == 1_000
    benchmark.extra_info["messages_per_sec"] = completed / benchmark.stats.stats.min


@pytest.mark.benchmark(group="simulator")
def test_vectorized_replay_throughput(benchmark):
    """Event-loop-free trace replay messages/second (same trace as the DES row)."""
    system = paper_evaluation_system(4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32)
    trace = generate_trace([8, 8, 8, 8], num_messages=1_000, seed=5)
    completed = benchmark(lambda: _vectorized_replay(system, trace))
    assert completed == 1_000
    benchmark.extra_info["messages_per_sec"] = completed / benchmark.stats.stats.min


@pytest.mark.benchmark(group="simulator")
def test_vectorized_closed_loop_throughput(benchmark):
    """Lean-engine closed-loop messages/second (same workload as the DES row)."""
    system = paper_evaluation_system(4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32)
    measured = benchmark(lambda: _vectorized_closed_loop(system, 1_000))
    assert measured > 0
    benchmark.extra_info["messages_per_sec"] = 1_000 / benchmark.stats.stats.min


@pytest.mark.benchmark(group="simulator")
def test_vectorized_figure_grid(benchmark):
    """Vectorized analytical sweep (evaluations/second over a figure grid)."""
    counts = PAPER_PARAMETERS.cluster_counts
    points = benchmark(lambda: _figure_grid(counts))
    assert points == 4 * len(counts)
    benchmark.extra_info["evals_per_sec"] = points / benchmark.stats.stats.min


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds of ``repeats`` runs of ``fn()``."""
    best = float("inf")
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_standalone(quick: bool = False, repeats: int = 3) -> dict:
    """Time every simulator workload without pytest-benchmark.

    ``quick`` shrinks run lengths for the 1-CPU CI box; throughput is
    size-independent enough for the regression gate.
    """
    messages = 400 if quick else 2_000
    trace_messages = 400 if quick else 2_000
    grid_counts = (1, 2, 4, 8, 16) if quick else PAPER_PARAMETERS.cluster_counts

    system = paper_evaluation_system(4, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=32)
    trace = generate_trace([8, 8, 8, 8], num_messages=trace_messages, seed=5)

    results = []

    measured, events = _closed_loop(system, messages)  # warm-up + counts
    seconds = _best_of(lambda: _closed_loop(system, messages), repeats)
    results.append({
        "name": "simulator_closed_loop",
        "seconds": round(seconds, 6),
        "messages_per_sec": round(measured / seconds, 1),
        "events_per_sec": round(events / seconds, 1),
    })

    measured, events = _closed_loop(system, messages, stats_mode="online")
    seconds = _best_of(lambda: _closed_loop(system, messages, stats_mode="online"), repeats)
    results.append({
        "name": "simulator_closed_loop_online",
        "seconds": round(seconds, 6),
        "messages_per_sec": round(measured / seconds, 1),
        "events_per_sec": round(events / seconds, 1),
    })

    # Peak RSS per stats mode (fresh subprocess each; not a throughput, so
    # the regression gate reports it without failing on it).
    rss_messages = 20_000 if quick else 100_000
    for mode in ("array", "online"):
        results.append({
            "name": f"simulator_rss_{mode}",
            "messages": rss_messages,
            "peak_rss_mb": _peak_rss_mb(mode, rss_messages),
        })

    completed, events = _trace_replay(system, trace)
    seconds = _best_of(lambda: _trace_replay(system, trace), repeats)
    results.append({
        "name": "simulator_trace_replay",
        "seconds": round(seconds, 6),
        "messages_per_sec": round(completed / seconds, 1),
        "events_per_sec": round(events / seconds, 1),
    })

    completed = _vectorized_replay(system, trace)
    seconds = _best_of(lambda: _vectorized_replay(system, trace), repeats)
    results.append({
        "name": "simulator_vectorized_replay",
        "seconds": round(seconds, 6),
        "messages_per_sec": round(completed / seconds, 1),
    })

    measured = _vectorized_closed_loop(system, messages)
    seconds = _best_of(lambda: _vectorized_closed_loop(system, messages), repeats)
    results.append({
        "name": "simulator_vectorized_closed_loop",
        "seconds": round(seconds, 6),
        "messages_per_sec": round(measured / seconds, 1),
    })

    points = _figure_grid(grid_counts)
    seconds = _best_of(lambda: _figure_grid(grid_counts), repeats)
    results.append({
        "name": "analytical_vectorized_grid",
        "seconds": round(seconds, 6),
        "events_per_sec": round(points / seconds, 1),  # evaluations/sec, same gate
    })

    return {
        "benchmark": "bench_simulator",
        "quick": quick,
        "repeats": repeats,
        "results": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description="Standalone simulator benchmark (JSON output).")
    parser.add_argument("--quick", action="store_true",
                        help="small run lengths for CI (a few seconds total)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions; the minimum is reported (default: 3)")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the JSON summary to this path")
    args = parser.parse_args()
    summary = run_standalone(quick=args.quick, repeats=args.repeats)
    text = json.dumps(summary, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


if __name__ == "__main__":
    main()
