"""Benchmark for the paper's validation methodology (analysis vs simulation).

The paper overlays analytical and simulated latency in Figures 4-7 and
concludes the model predicts "with good degree of accuracy".  This bench
quantifies that statement: for each figure it runs analysis and simulation
at representative points and reports the relative error (recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from _bench_utils import SIM_MESSAGES
from repro.core.model import ModelConfig
from repro.experiments.figures import FIGURE_SPECS
from repro.experiments.scenarios import build_scenario_system
from repro.simulation.runner import validate_against_analysis
from repro.simulation.simulator import SimulationConfig


def _validate_figure(figure: int, num_clusters: int, message_bytes: int, seed: int):
    spec = FIGURE_SPECS[figure]
    system = build_scenario_system(spec.scenario, num_clusters)
    model_config = ModelConfig(
        architecture=spec.architecture, message_bytes=float(message_bytes)
    )
    sim_config = SimulationConfig(
        architecture=spec.architecture,
        message_bytes=float(message_bytes),
        num_messages=SIM_MESSAGES,
        seed=seed,
    )
    return validate_against_analysis(system, model_config, sim_config)


@pytest.mark.benchmark(group="validation")
@pytest.mark.parametrize("figure", [4, 5, 6, 7])
def test_validation_accuracy_per_figure(benchmark, figure, figure_printer):
    """Relative error between model and simulator at a mid-sweep point (C=16, M=1024)."""
    point = benchmark.pedantic(
        _validate_figure, args=(figure, 16, 1024, 100 + figure), iterations=1, rounds=1
    )
    assert point.relative_error < 0.20
    figure_printer.append(
        f"Figure {figure} validation @ C=16, M=1024: "
        f"analysis={point.analysis_latency_ms:.4f} ms, "
        f"simulation={point.simulation_latency_ms:.4f} ms, "
        f"rel. error={point.relative_error * 100:.2f}%"
    )


@pytest.mark.benchmark(group="validation")
@pytest.mark.parametrize("num_clusters", [2, 256])
def test_validation_accuracy_sweep_extremes(benchmark, num_clusters, figure_printer):
    """Model accuracy at the extremes of the cluster-count sweep (Figure 4 setup)."""
    point = benchmark.pedantic(
        _validate_figure, args=(4, num_clusters, 512, 200 + num_clusters),
        iterations=1, rounds=1,
    )
    assert point.relative_error < 0.20
    figure_printer.append(
        f"Figure 4 validation @ C={num_clusters}, M=512: rel. error="
        f"{point.relative_error * 100:.2f}%"
    )
