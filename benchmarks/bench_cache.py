"""Benchmark of the content-addressed result cache: cold vs warm.

Measures the same campaign twice against a fresh store — the *cold* run
computes both pipeline passes and fills the entry, the *warm* run is
served entirely from disk (payload load + hex rehydration + plan rebuild)
— plus the fixed per-lookup costs (key derivation including the code
fingerprint).  The summary is informational: warm-hit latency is dominated
by payload size, so there is no committed baseline and no regression gate,
but the JSON lands next to the gated summaries in the CI ``bench`` job's
artifacts::

    PYTHONPATH=src python benchmarks/bench_cache.py --quick --output BENCH_cache.json

The script also asserts the cache's core contract while it times it: the
warm rows must equal the cold rows exactly, and the warm run must be an
actual hit.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time

from _bench_utils import pytest_or_stub

pytest = pytest_or_stub()

from repro.cache import ResultCache, code_fingerprint
from repro.experiments.pipeline import (
    ExperimentRunner,
    ExperimentSpec,
    TableCollector,
    build_plan,
)


def _spec(quick: bool) -> ExperimentSpec:
    return ExperimentSpec(
        scenario="case-1",
        mode="both",
        cluster_counts=[2, 4] if quick else [2, 4, 8, 16],
        message_sizes=[512.0],
        replications=1 if quick else 2,
        simulation_messages=300 if quick else 2_000,
        seed=0,
    )


def _timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def run_standalone(quick: bool = False, repeats: int = 3) -> dict:
    """Time cold fill, warm hit, and key derivation; one JSON-able summary."""
    spec = _spec(quick)
    results = []

    code_fingerprint()  # pay the one-off source walk outside the timings
    _, fp_seconds = _timed(lambda: code_fingerprint(refresh=True))
    results.append({"name": "code_fingerprint_refresh", "seconds": round(fp_seconds, 6)})

    with tempfile.TemporaryDirectory(prefix="bench-cache-") as root:
        cache = ResultCache(root)

        plan = build_plan(spec)
        _, key_seconds = _timed(lambda: cache.key_for_plan(plan))
        results.append({"name": "key_for_plan", "seconds": round(key_seconds, 6)})

        runner = ExperimentRunner(cache=cache)
        cold, cold_seconds = _timed(
            lambda: runner.run(build_plan(spec), TableCollector())
        )
        results.append({"name": "cold_run_and_fill", "seconds": round(cold_seconds, 6)})

        warm_best = float("inf")
        for _ in range(max(repeats, 1)):
            warm, seconds = _timed(lambda: runner.run(build_plan(spec), TableCollector()))
            warm_best = min(warm_best, seconds)
            assert warm.to_rows() == cold.to_rows(), "cache hit diverged from cold run"
        stats = cache.stats()
        assert stats.hits == max(repeats, 1), "warm runs were not served from the cache"
        results.append({
            "name": "warm_hit",
            "seconds": round(warm_best, 6),
            "speedup_vs_cold": round(cold_seconds / warm_best, 1),
            "payload_bytes": stats.payload_bytes,
        })

    return {
        "benchmark": "bench_cache",
        "quick": quick,
        "repeats": repeats,
        "results": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Standalone result-cache benchmark (JSON output, informational)."
    )
    parser.add_argument("--quick", action="store_true",
                        help="small campaign for CI (a few seconds total)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="warm-hit repetitions; the minimum is reported (default: 3)")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the JSON summary to this path")
    args = parser.parse_args()
    summary = run_standalone(quick=args.quick, repeats=args.repeats)
    text = json.dumps(summary, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


if __name__ == "__main__":
    main()
