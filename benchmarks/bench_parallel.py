"""Serial-vs-pool speedup benchmark for the parallel sweep engine.

Runs the same figure-style replication sweep twice — once in-process
(``jobs=1``) and once across a process pool (one worker per core) — asserts
the results are bit-identical, and emits a JSON summary of wall-clock times
and speedup (printed to stdout like the other ``bench_*`` summaries).

On a multi-core machine the pool run should approach ``min(jobs, tasks)``-x
speedup because the simulations are fully independent; on a single-core CI
box the speedup hovers around 1.0x (pool overhead only) — the bit-identity
assertion is what must hold everywhere.

Run as a script for the JSON report without pytest::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import time

import pytest

from _bench_utils import SIM_MESSAGES
from repro.cluster.presets import paper_evaluation_system
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.parallel import SweepEngine, SweepTask, resolve_jobs, spawn_seeds
from repro.simulation.runner import replication_configs, run_simulation_task
from repro.simulation.simulator import SimulationConfig


def _sweep_tasks(num_messages: int, replications: int = 8):
    """A figure-style sweep: one task per (cluster count, replication)."""
    tasks = []
    cluster_counts = (2, 4, 8, 16)
    point_seeds = spawn_seeds(0, len(cluster_counts))
    for num_clusters, point_seed in zip(cluster_counts, point_seeds):
        system = paper_evaluation_system(
            num_clusters, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=64
        )
        config = SimulationConfig(num_messages=num_messages, seed=point_seed)
        for i, rep_config in enumerate(replication_configs(config, replications)):
            tasks.append(
                SweepTask(
                    fn=run_simulation_task,
                    args=(system, rep_config),
                    label=f"C={num_clusters} rep[{i}]",
                )
            )
    return tasks


def run_comparison(jobs: int | None = None, num_messages: int | None = None) -> dict:
    """Time the identical sweep serially and through the pool."""
    jobs = resolve_jobs(jobs)
    num_messages = num_messages if num_messages is not None else max(SIM_MESSAGES // 4, 500)
    tasks = _sweep_tasks(num_messages)

    t0 = time.perf_counter()
    serial_results = SweepEngine(jobs=1).run(tasks)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pool_results = SweepEngine(jobs=jobs).run(tasks)
    parallel_s = time.perf_counter() - t0

    identical = serial_results == pool_results
    return {
        "benchmark": "bench_parallel",
        "tasks": len(tasks),
        "messages_per_task": num_messages,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "bit_identical": identical,
    }


@pytest.mark.benchmark(group="parallel")
def test_parallel_sweep_speedup():
    """Pool results must be bit-identical to serial; speedup is reported."""
    summary = run_comparison()
    print("\n" + json.dumps(summary, indent=2))
    assert summary["bit_identical"], "pool sweep diverged from the serial sweep"
    # Speedup is hardware-dependent (~= core count on idle multi-core boxes,
    # ~1.0 on single-core CI); only sanity-check that the pool finished.
    assert summary["parallel_s"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=0,
                        help="pool workers (0 = one per CPU core)")
    parser.add_argument("--messages", type=int, default=None,
                        help="simulated messages per task")
    args = parser.parse_args()
    print(json.dumps(run_comparison(jobs=args.jobs, num_messages=args.messages), indent=2))


if __name__ == "__main__":
    main()
