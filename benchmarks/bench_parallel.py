"""Backend comparison benchmark for the parallel sweep engine.

Runs the same figure-style replication sweep once per execution backend —
in-process (``serial``), across a local process pool (``pool``) and through
the TCP work queue with locally spawned workers (``socket``) — asserts the
results are bit-identical everywhere, and emits a JSON summary with one
row per backend (wall-clock seconds and speedup vs serial).

On a multi-core machine the pool/socket runs should approach
``min(jobs, tasks)``-x speedup because the simulations are fully
independent; on a single-core CI box the speedup hovers around 1.0x
(fan-out overhead only) — the bit-identity assertion is what must hold
everywhere.

Run as a script for the JSON report without pytest::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--jobs N] [--backends serial,pool,socket]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from _bench_utils import SIM_MESSAGES, pytest_or_stub

pytest = pytest_or_stub()
from repro.cluster.presets import paper_evaluation_system
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.parallel import (
    SocketBackend,
    SweepEngine,
    SweepTask,
    resolve_jobs,
    spawn_seeds,
)
from repro.simulation.runner import replication_configs, run_simulation_task
from repro.simulation.simulator import SimulationConfig

DEFAULT_BACKENDS = ("serial", "pool", "socket")


def _sweep_tasks(num_messages: int, replications: int = 8):
    """A figure-style sweep: one task per (cluster count, replication)."""
    tasks = []
    cluster_counts = (2, 4, 8, 16)
    point_seeds = spawn_seeds(0, len(cluster_counts))
    for num_clusters, point_seed in zip(cluster_counts, point_seeds):
        system = paper_evaluation_system(
            num_clusters, GIGABIT_ETHERNET, FAST_ETHERNET, total_processors=64
        )
        config = SimulationConfig(num_messages=num_messages, seed=point_seed)
        for i, rep_config in enumerate(replication_configs(config, replications)):
            tasks.append(
                SweepTask(
                    fn=run_simulation_task,
                    args=(system, rep_config),
                    label=f"C={num_clusters} rep[{i}]",
                )
            )
    return tasks


def _engine_for(backend: str, jobs: int) -> SweepEngine:
    if backend == "serial":
        return SweepEngine(jobs=1)
    if backend == "pool":
        return SweepEngine(jobs=jobs, backend="pool")
    if backend == "socket":
        return SweepEngine(backend=SocketBackend(spawn_workers=jobs))
    raise ValueError(f"unknown backend {backend!r}")


def run_comparison(
    jobs: int | None = None,
    num_messages: int | None = None,
    backends: tuple = DEFAULT_BACKENDS,
    replications: int = 8,
) -> dict:
    """Time the identical sweep through every requested backend."""
    jobs = resolve_jobs(jobs)
    num_messages = num_messages if num_messages is not None else max(SIM_MESSAGES // 4, 500)
    tasks = _sweep_tasks(num_messages, replications=replications)

    rows = []
    reference = None
    serial_s = None
    identical = True
    for backend in backends:
        engine = _engine_for(backend, jobs)
        t0 = time.perf_counter()
        results = engine.run(tasks)
        elapsed = time.perf_counter() - t0
        if reference is None:
            reference = results
        elif results != reference:
            identical = False
        if backend == "serial":
            serial_s = elapsed
        rows.append(
            {
                "backend": backend,
                "workers": 1 if backend == "serial" else jobs,
                "seconds": round(elapsed, 4),
                "tasks_per_sec": round(len(tasks) / elapsed, 3) if elapsed > 0 else None,
            }
        )
    for row in rows:
        row["speedup_vs_serial"] = (
            round(serial_s / row["seconds"], 3)
            if serial_s is not None and row["seconds"] > 0
            else None
        )
    return {
        "benchmark": "bench_parallel",
        "tasks": len(tasks),
        "messages_per_task": num_messages,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "backends": rows,
        "bit_identical": identical,
    }


@pytest.mark.benchmark(group="parallel")
def test_parallel_sweep_speedup():
    """Every backend must be bit-identical to serial; timings are reported."""
    summary = run_comparison()
    print("\n" + json.dumps(summary, indent=2))
    assert summary["bit_identical"], "a backend's sweep diverged from the serial sweep"
    # Speedup is hardware-dependent (~= core count on idle multi-core boxes,
    # ~1.0 on single-core CI); only sanity-check that every backend finished.
    assert all(row["seconds"] > 0 for row in summary["backends"])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=0,
                        help="pool/socket workers (0 = one per CPU core)")
    parser.add_argument("--messages", type=int, default=None,
                        help="simulated messages per task")
    parser.add_argument("--backends", type=str, default=",".join(DEFAULT_BACKENDS),
                        help="comma-separated backends to compare")
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI: 200 messages/task, 2 replications")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the JSON summary to this path")
    args = parser.parse_args()
    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    messages = 200 if args.quick and args.messages is None else args.messages
    summary = run_comparison(
        jobs=args.jobs,
        num_messages=messages,
        backends=backends,
        replications=2 if args.quick else 8,
    )
    summary["quick"] = args.quick
    text = json.dumps(summary, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


if __name__ == "__main__":
    main()
