"""Benchmark / regeneration harness for **Figure 4** of the paper.

Figure 4: average message latency vs number of clusters, non-blocking
(fat-tree) networks, Case-1 (ICN1 = Gigabit Ethernet, ECN1/ICN2 = Fast
Ethernet), message sizes 512 and 1024 bytes, analysis and simulation.

Run ``pytest benchmarks/bench_figure4.py --benchmark-only -s`` to see the
regenerated series; ``REPRO_FULL_SCALE=1`` switches the simulation to the
paper's full 10 000-message runs over the complete cluster-count grid.
"""

from __future__ import annotations

import pytest

from _bench_utils import SIM_CLUSTER_COUNTS, SIM_MESSAGES, format_series
from repro.experiments.figures import run_figure

FIGURE = 4


@pytest.mark.benchmark(group="figure4")
def test_figure4_analysis_series(benchmark, figure_printer):
    """Analytical curves of Figure 4 over the paper's full sweep grid."""
    result = benchmark(run_figure, FIGURE, include_simulation=False)
    assert len(result.points) == 18  # 9 cluster counts x 2 message sizes
    for size in (512, 1024):
        series = [p.analysis_latency_ms for p in result.points_for_size(size)]
        assert series[-1] > series[0]  # latency grows with the cluster count
    figure_printer.append(format_series(result))


@pytest.mark.benchmark(group="figure4")
def test_figure4_analysis_plus_simulation(benchmark, figure_printer):
    """Analysis + validation simulation for Figure 4 (reduced grid by default)."""
    result = benchmark.pedantic(
        run_figure,
        args=(FIGURE,),
        kwargs=dict(
            include_simulation=True,
            cluster_counts=list(SIM_CLUSTER_COUNTS),
            simulation_messages=SIM_MESSAGES,
            seed=4,
        ),
        iterations=1,
        rounds=1,
    )
    summary = result.accuracy_summary()
    assert summary is not None
    assert summary.mape_percent < 20.0
    figure_printer.append(format_series(result) + f"\n  accuracy: {summary}")
